"""Minimal GDSII stream format support.

Writes/reads a single-structure GDSII file containing BOUNDARY elements —
enough to round-trip every benchmark clip as a real ``.gds`` that layout
viewers open.  Coordinates are stored in database units of 1 nm.

The GDSII record subset used: HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR,
STRNAME, BOUNDARY, LAYER, DATATYPE, XY, ENDEL, ENDSTR, ENDLIB.
"""

from __future__ import annotations

import struct
from datetime import datetime

from repro.errors import DataError
from repro.geometry.polygon import Polygon

_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100
_ENDLIB = 0x0400


def _record(tag: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    return struct.pack(">HH", length, tag) + payload


def _gds_real8(value: float) -> bytes:
    """Encode a float as GDSII 8-byte excess-64 real."""
    if value == 0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1:
        value /= 16.0
        exponent += 1
    while value < 1 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B", sign | exponent) + mantissa.to_bytes(7, "big")


def _parse_real8(raw: bytes) -> float:
    sign = -1.0 if raw[0] & 0x80 else 1.0
    exponent = (raw[0] & 0x7F) - 64
    mantissa = int.from_bytes(raw[1:8], "big") / float(1 << 56)
    return sign * mantissa * (16.0**exponent)


def write_gds(
    path: str,
    polygons: list[Polygon],
    cell_name: str = "CLIP",
    layer: int = 1,
    datatype: int = 0,
) -> None:
    """Write polygons (nm coordinates) as one GDSII cell."""
    now = datetime(2024, 1, 1)
    stamp = struct.pack(
        ">6H", now.year, now.month, now.day, now.hour, now.minute, now.second
    )
    chunks = [
        _record(_HEADER, struct.pack(">h", 600)),
        _record(_BGNLIB, stamp + stamp),
        _record(_LIBNAME, _pad(b"REPRO")),
        # 1 db unit = 1e-3 user units (um) = 1e-9 m.
        _record(_UNITS, _gds_real8(1e-3) + _gds_real8(1e-9)),
        _record(_BGNSTR, stamp + stamp),
        _record(_STRNAME, _pad(cell_name.encode())),
    ]
    for polygon in polygons:
        points = list(polygon.vertices) + [polygon.vertices[0]]
        coords = b"".join(
            struct.pack(">ii", int(round(x)), int(round(y))) for x, y in points
        )
        chunks.extend(
            [
                _record(_BOUNDARY),
                _record(_LAYER, struct.pack(">h", layer)),
                _record(_DATATYPE, struct.pack(">h", datatype)),
                _record(_XY, coords),
                _record(_ENDEL),
            ]
        )
    chunks.append(_record(_ENDSTR))
    chunks.append(_record(_ENDLIB))
    with open(path, "wb") as handle:
        handle.write(b"".join(chunks))


def read_gds_polygons(path: str) -> list[Polygon]:
    """Read every BOUNDARY element back as a polygon (nm coordinates)."""
    with open(path, "rb") as handle:
        data = handle.read()
    polygons: list[Polygon] = []
    offset = 0
    unit_scale = 1.0
    while offset + 4 <= len(data):
        (length, tag) = struct.unpack(">HH", data[offset : offset + 4])
        if length < 4:
            raise DataError(f"corrupt GDSII record at offset {offset}")
        payload = data[offset + 4 : offset + length]
        if tag == _UNITS:
            user_per_db = _parse_real8(payload[:8])
            meters_per_db = _parse_real8(payload[8:16])
            unit_scale = meters_per_db / 1e-9  # db units -> nm
            del user_per_db
        elif tag == _XY:
            count = len(payload) // 8
            points = [
                struct.unpack(">ii", payload[8 * i : 8 * i + 8]) for i in range(count)
            ]
            if points and points[0] == points[-1]:
                points = points[:-1]
            polygons.append(
                Polygon(tuple((x * unit_scale, y * unit_scale) for x, y in points))
            )
        offset += length
        if tag == _ENDLIB:
            break
    return polygons


def _pad(name: bytes) -> bytes:
    return name + (b"\x00" if len(name) % 2 else b"")
