"""JSON (de)serialization of benchmark clips."""

from __future__ import annotations

import json

from repro.errors import DataError
from repro.geometry.layout import Clip
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

_FORMAT_VERSION = 1


def clip_to_json(clip: Clip) -> str:
    """Serialize a clip (targets, SRAFs, metadata) to a JSON string."""
    payload = {
        "version": _FORMAT_VERSION,
        "name": clip.name,
        "layer": clip.layer,
        "bbox": [clip.bbox.x0, clip.bbox.y0, clip.bbox.x1, clip.bbox.y1],
        "targets": [list(map(list, p.vertices)) for p in clip.targets],
        "srafs": [list(map(list, p.vertices)) for p in clip.srafs],
        "metadata": clip.metadata,
    }
    return json.dumps(payload, indent=2)


def clip_from_json(text: str) -> Clip:
    payload = json.loads(text)
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise DataError(f"unsupported clip format version: {version}")
    return Clip(
        name=payload["name"],
        bbox=Rect(*payload["bbox"]),
        targets=tuple(
            Polygon(tuple(map(tuple, verts))) for verts in payload["targets"]
        ),
        srafs=tuple(Polygon(tuple(map(tuple, verts))) for verts in payload["srafs"]),
        layer=payload["layer"],
        metadata=payload.get("metadata", {}),
    )


def save_clip(clip: Clip, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(clip_to_json(clip))


def load_clip(path: str) -> Clip:
    with open(path, "r", encoding="utf-8") as handle:
        return clip_from_json(handle.read())
