"""Exception hierarchy for the CAMO reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package-specific failures without masking programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate rects, non-rectilinear polygons...)."""


class RasterError(ReproError):
    """Rasterization failure (empty grids, out-of-window geometry...)."""


class SegmentationError(ReproError):
    """Boundary fragmentation failure (segments too short, bad spacing...)."""


class LithoError(ReproError):
    """Lithography model failure (bad kernels, non-converged TCC...)."""


class MetrologyError(ReproError):
    """EPE / PV-band measurement failure (no contour crossing found...)."""


class SquishError(ReproError):
    """Squish-pattern encoding failure (window too small, overflow...)."""


class GraphError(ReproError):
    """Segment-graph construction failure."""


class NNError(ReproError):
    """Neural-network framework failure (shape mismatch, detached grads...)."""


class RLError(ReproError):
    """Reinforcement-learning loop failure."""


class DataError(ReproError):
    """Benchmark-suite generation or (de)serialization failure."""


class ConfigError(ReproError):
    """Invalid configuration value."""


class SurrogateError(ReproError):
    """Learned litho surrogate failure (bad checkpoint, non-compact band,
    feature/label shape mismatch...)."""


class ServiceError(ReproError):
    """Mask-optimization service failure (bad request, unknown engine...)."""


class ServiceBusy(ServiceError):
    """Admission control rejected a request: the tenant's queue is at its
    bounded depth.  Callers should back off and resubmit — the daemon
    sheds load explicitly instead of buffering without bound."""


class RetriesExhausted(ServiceError):
    """A request's task kept hitting infrastructure faults (worker
    crashes, stall kills) until its retry budget ran out.  Distinct from
    a generic :class:`ServiceError` so callers can tell "the
    infrastructure gave up after N attempts" from "the request itself
    was bad"."""


class DeadlineExceeded(ServiceError):
    """A request's per-request deadline elapsed before its task
    completed (queued, running, or retrying).  The task's eventual
    late result, if any, is discarded — deduplicated by ticket — so a
    deadline failure can never be followed by a surprise success."""


class FaultInjected(ServiceError):
    """Raised by a :class:`repro.service.faults.FaultPlan` ``raise``
    action at a named injection point — only ever seen in fault-
    injection tests and chaos runs, never in production paths."""


class JournalError(ServiceError):
    """Outcome-journal failure: not a journal file, an engine
    fingerprint that doesn't match the requested spec, or an append to
    a closed journal.  (A *corrupt tail* is not an error — it is
    truncated on open, by design.)"""
