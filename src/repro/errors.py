"""Exception hierarchy for the CAMO reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package-specific failures without masking programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate rects, non-rectilinear polygons...)."""


class RasterError(ReproError):
    """Rasterization failure (empty grids, out-of-window geometry...)."""


class SegmentationError(ReproError):
    """Boundary fragmentation failure (segments too short, bad spacing...)."""


class LithoError(ReproError):
    """Lithography model failure (bad kernels, non-converged TCC...)."""


class MetrologyError(ReproError):
    """EPE / PV-band measurement failure (no contour crossing found...)."""


class SquishError(ReproError):
    """Squish-pattern encoding failure (window too small, overflow...)."""


class GraphError(ReproError):
    """Segment-graph construction failure."""


class NNError(ReproError):
    """Neural-network framework failure (shape mismatch, detached grads...)."""


class RLError(ReproError):
    """Reinforcement-learning loop failure."""


class DataError(ReproError):
    """Benchmark-suite generation or (de)serialization failure."""


class ConfigError(ReproError):
    """Invalid configuration value."""


class ServiceError(ReproError):
    """Mask-optimization service failure (bad request, unknown engine...)."""


class ServiceBusy(ServiceError):
    """Admission control rejected a request: the tenant's queue is at its
    bounded depth.  Callers should back off and resubmit — the daemon
    sheds load explicitly instead of buffering without bound."""
