"""Via-layer benchmark clips (paper Section 4.1, Table 1).

2 um x 2 um windows containing 70 nm x 70 nm vias; the training suite has
11 clips with 2-5 vias and the test suite the 13 clips V1..V13 with via
counts [2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 6, 6, 6] — matching Table 1's
"Via #" column (sum 58).  Placement is rejection-sampled with a deterministic
per-clip seed; SRAFs are inserted rule-based before OPC, as the paper does
with Calibre.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VIA_CLIP_NM, VIA_SIZE_NM
from repro.errors import DataError
from repro.geometry.layout import Clip
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.sraf import insert_srafs

VIA_TEST_COUNTS: tuple[int, ...] = (2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 6, 6, 6)
"""Via count per test clip V1..V13 (Table 1)."""

VIA_TRAIN_COUNTS: tuple[int, ...] = (2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5)
"""Via counts for the 11 training clips (paper: 2 to 5 vias)."""

_MARGIN_NM = 350.0
"""Keep vias away from the window border (SRAF + optical-ambit room)."""

_MIN_CENTER_SPACING_NM = 250.0
"""Minimum via centre-to-centre distance."""


def generate_via_clip(
    name: str,
    n_vias: int,
    seed: int,
    clip_nm: float = VIA_CLIP_NM,
    via_nm: float = VIA_SIZE_NM,
    with_srafs: bool = True,
) -> Clip:
    """One deterministic via clip with rejection-sampled placement."""
    if n_vias < 1:
        raise DataError(f"need at least one via, got {n_vias}")
    rng = np.random.default_rng(seed)
    low = _MARGIN_NM
    high = clip_nm - _MARGIN_NM
    if high - low < _MIN_CENTER_SPACING_NM:
        raise DataError(f"clip too small for margins: {clip_nm} nm")

    centers: list[tuple[float, float]] = []
    attempts = 0
    while len(centers) < n_vias:
        attempts += 1
        if attempts > 10_000:
            raise DataError(
                f"could not place {n_vias} vias in {clip_nm} nm clip (seed {seed})"
            )
        # Snap to a 2 nm grid so geometry stays integer-friendly.
        cx = float(rng.integers(int(low / 2), int(high / 2) + 1) * 2)
        cy = float(rng.integers(int(low / 2), int(high / 2) + 1) * 2)
        if all(
            np.hypot(cx - ox, cy - oy) >= _MIN_CENTER_SPACING_NM
            for ox, oy in centers
        ):
            centers.append((cx, cy))

    targets = tuple(
        Polygon.from_rect(Rect.square(cx, cy, via_nm)) for cx, cy in centers
    )
    clip = Clip(
        name=name,
        bbox=Rect(0, 0, clip_nm, clip_nm),
        targets=targets,
        layer="via",
        metadata={"seed": seed, "n_vias": n_vias},
    )
    return insert_srafs(clip) if with_srafs else clip


def via_train_suite(base_seed: int = 1300, with_srafs: bool = True) -> list[Clip]:
    """The 11 training clips (via counts 2..5)."""
    return [
        generate_via_clip(f"T{i + 1}", count, seed=base_seed + i, with_srafs=with_srafs)
        for i, count in enumerate(VIA_TRAIN_COUNTS)
    ]


def via_test_suite(base_seed: int = 2600, with_srafs: bool = True) -> list[Clip]:
    """The 13 test clips V1..V13 with Table 1's via counts."""
    return [
        generate_via_clip(f"V{i + 1}", count, seed=base_seed + i, with_srafs=with_srafs)
        for i, count in enumerate(VIA_TEST_COUNTS)
    ]
