"""Synthetic standard-cell-style metal layout generation.

The paper samples metal clips from an OpenROAD-placed-and-routed NanGate45
layout plus clips with regular metal patterns.  Offline we synthesize the
same statistics: rows of preferred-direction (horizontal) wires with
standard widths, varied lengths and x-offsets (the "routed" category), and
uniform line/space gratings (the "regular" category).  Wire lengths are
chosen so each clip hits an exact measure-point budget — Table 2 reports
the per-clip point counts, and the generators reproduce them exactly.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MEASURE_SPACING_NM, METAL_CLIP_NM
from repro.errors import DataError
from repro.geometry.layout import Clip
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

_MARGIN_NM = 120.0
_WIRE_WIDTHS = (60.0, 70.0, 80.0)
_ROW_PITCH_MIN = 150.0


def _wire_length_for_points(points_per_edge: int, spacing: float) -> float:
    """A length whose horizontal edge carries exactly ``points_per_edge``
    measure points: ``n`` points need ``length // spacing == n``."""
    return points_per_edge * spacing + spacing / 2


def _split_points_into_rows(
    half_points: int, max_per_row: int
) -> list[int]:
    """Split a clip's measure-point budget across wire rows.

    Each wire contributes ``2 k`` points (top + bottom edge with ``k``
    points each); ``half_points`` is the total ``sum k`` target.
    """
    if half_points < 1:
        raise DataError(f"need a positive point budget, got {half_points}")
    rows: list[int] = []
    remaining = half_points
    while remaining > 0:
        take = min(max_per_row, remaining)
        # Avoid a trailing sliver wire with a single point when possible.
        if 0 < remaining - take == 1 and take > 2:
            take -= 1
        rows.append(take)
        remaining -= take
    return rows


def stdcell_metal_clip(
    name: str,
    measure_points: int,
    seed: int,
    clip_nm: float = METAL_CLIP_NM,
    spacing: float = MEASURE_SPACING_NM,
) -> Clip:
    """A routed-looking clip with exactly ``measure_points`` EPE points."""
    if measure_points % 2:
        raise DataError("measure_points must be even (top+bottom edges)")
    rng = np.random.default_rng(seed)
    usable = clip_nm - 2 * _MARGIN_NM
    max_k_per_row = int((usable - spacing) // spacing)
    rows = _split_points_into_rows(measure_points // 2, max_k_per_row)
    if len(rows) * _ROW_PITCH_MIN > usable:
        raise DataError(
            f"{name}: {measure_points} points need {len(rows)} rows; clip too small"
        )

    pitch = usable / len(rows)
    wires: list[Polygon] = []
    for row_index, k in enumerate(rows):
        width = float(rng.choice(_WIRE_WIDTHS))
        length = _wire_length_for_points(k, spacing)
        slack = usable - length
        x0 = _MARGIN_NM + float(rng.uniform(0, max(slack, 0)))
        y_center = _MARGIN_NM + (row_index + 0.5) * pitch
        wires.append(
            Polygon.from_rect(
                Rect(
                    round(x0),
                    round(y_center - width / 2),
                    round(x0 + length),
                    round(y_center + width / 2),
                )
            )
        )
    return Clip(
        name=name,
        bbox=Rect(0, 0, clip_nm, clip_nm),
        targets=tuple(wires),
        layer="metal",
        metadata={"seed": seed, "category": "stdcell", "points": measure_points},
    )


def regular_metal_clip(
    name: str,
    measure_points: int,
    seed: int = 0,
    clip_nm: float = METAL_CLIP_NM,
    spacing: float = MEASURE_SPACING_NM,
    width: float = 70.0,
) -> Clip:
    """A regular line/space grating with exactly ``measure_points`` points.

    All wires share one length and alignment — the paper's "clips with
    regular metal patterns" category.
    """
    if measure_points % 2:
        raise DataError("measure_points must be even")
    half = measure_points // 2
    usable = clip_nm - 2 * _MARGIN_NM
    max_k_per_row = int((usable - spacing) // spacing)
    n_rows = 1
    while half % n_rows or half // n_rows > max_k_per_row:
        n_rows += 1
        if n_rows > 12:
            raise DataError(f"{name}: cannot tile {measure_points} points regularly")
    k = half // n_rows
    length = _wire_length_for_points(k, spacing)
    x0 = _MARGIN_NM + (usable - length) / 2
    pitch = usable / n_rows
    wires = tuple(
        Polygon.from_rect(
            Rect(
                round(x0),
                round(_MARGIN_NM + (i + 0.5) * pitch - width / 2),
                round(x0 + length),
                round(_MARGIN_NM + (i + 0.5) * pitch + width / 2),
            )
        )
        for i in range(n_rows)
    )
    return Clip(
        name=name,
        bbox=Rect(0, 0, clip_nm, clip_nm),
        targets=wires,
        layer="metal",
        metadata={"seed": seed, "category": "regular", "points": measure_points},
    )
