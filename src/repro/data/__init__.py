"""Benchmark clip suites.

Deterministic generators reproducing the paper's dataset *shapes*: via
clips after [17] (2 um windows, 70 nm vias, train 11 / test 13 with the
exact per-clip via counts of Table 1) and metal clips (1.5 um windows,
60 nm measure spacing, M1..M10 with the exact measure-point counts of
Table 2, standard-cell-like and regular categories).
"""

from repro.data.via_bench import via_test_suite, via_train_suite
from repro.data.metal_bench import metal_test_suite, metal_train_suite
from repro.data.stdcell import stdcell_metal_clip, regular_metal_clip

__all__ = [
    "via_train_suite",
    "via_test_suite",
    "metal_train_suite",
    "metal_test_suite",
    "stdcell_metal_clip",
    "regular_metal_clip",
]
