"""Metal-layer benchmark clips (paper Section 4.3, Table 2).

M1..M10 with the exact measure-point counts of Table 2:
[64, 84, 88, 100, 106, 112, 116, 24, 72, 120] (sum 886).  M8 and M9 are
"regular" pattern clips; the rest are standard-cell-routed style.
"""

from __future__ import annotations

from repro.data.stdcell import regular_metal_clip, stdcell_metal_clip
from repro.errors import DataError
from repro.geometry.layout import Clip

METAL_TEST_POINTS: tuple[int, ...] = (64, 84, 88, 100, 106, 112, 116, 24, 72, 120)
"""Measure points per clip M1..M10 (Table 2)."""

_REGULAR_CLIPS = {"M8", "M9"}

METAL_TRAIN_POINTS: tuple[int, ...] = (48, 60, 72, 80, 96, 104)
"""Training clips for the metal experiments (not tabulated in the paper)."""


def metal_test_suite(base_seed: int = 4500) -> list[Clip]:
    """M1..M10 with Table 2's measure-point counts."""
    clips: list[Clip] = []
    for index, points in enumerate(METAL_TEST_POINTS):
        name = f"M{index + 1}"
        clips.append(_make_clip(name, points, base_seed + index))
    return clips


def metal_train_suite(base_seed: int = 8200) -> list[Clip]:
    return [
        _make_clip(f"MT{i + 1}", points, base_seed + i)
        for i, points in enumerate(METAL_TRAIN_POINTS)
    ]


def _make_clip(name: str, points: int, seed: int) -> Clip:
    if points % 2:
        raise DataError(f"{name}: odd measure-point count {points}")
    if name in _REGULAR_CLIPS:
        return regular_metal_clip(name, points, seed=seed)
    return stdcell_metal_clip(name, points, seed=seed)
