"""`MaskOptService`: the serving front door for mask optimization.

One service instance owns a shared :class:`LithographySimulator`
(optionally backed by a disk-persistent kernel-spectra store), an engine
cache, a submission queue, and the shape-binned verification scheduler.
Callers either queue :class:`~repro.service.api.OptRequest` records with
:meth:`MaskOptService.submit` and drain them with
:meth:`~MaskOptService.run_all`, or hand a whole benchmark suite to
:meth:`~MaskOptService.map_suite`, which fans the engines out over a
thread pool (the scipy FFT backend releases the GIL, so litho work
genuinely overlaps on multi-core hosts) and still funnels *all*
verification through one cross-engine batched pass.

Numerical contract: results are bit-for-bit identical to calling each
engine's ``optimize`` directly and re-measuring masks one at a time —
engines run unmodified, the scheduler's batched re-simulation is
batch-size independent by construction, and threading never reorders any
per-engine computation (each engine instance is driven by exactly one
thread; the litho caches it shares are value-deterministic).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import MetrologyError, ServiceError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service.api import OptRequest, OptResult
from repro.service.registry import create_engine
from repro.service.scheduler import ShapeBinScheduler

_VERIFY_TOLERANCE_NM = 1e-6
_DEFAULT_EPE_SEARCH_NM = 40.0


def engine_epe_search_nm(engine) -> float:
    """The contour-search range an engine's own metrology used.

    Engines without the config knob fall back to the shared 40 nm
    default, mirroring what their environments do internally.
    """
    return float(
        getattr(getattr(engine, "config", None), "epe_search_nm",
                _DEFAULT_EPE_SEARCH_NM)
    )


class MaskOptService:
    """Request/response mask optimization over one shared simulator."""

    def __init__(
        self,
        simulator: LithographySimulator | None = None,
        litho_config: LithoConfig | None = None,
        verify_tolerance_nm: float = _VERIFY_TOLERANCE_NM,
    ) -> None:
        if simulator is not None and litho_config is not None:
            raise ServiceError(
                "pass either a simulator or a litho_config, not both"
            )
        if simulator is None:
            simulator = LithographySimulator(litho_config or LithoConfig())
        self.simulator = simulator
        self.verify_tolerance_nm = float(verify_tolerance_nm)
        self.scheduler = ShapeBinScheduler()
        self._pending: list[tuple[int, OptRequest]] = []
        self._engines: dict[tuple, Any] = {}
        self._next_id = 0

    # -- engine management ---------------------------------------------------
    def engine_for(self, request: OptRequest):
        """Resolve a request's engine (instances pass through; registry
        builds are cached per (name, overrides, training suite) so a
        suite of requests shares one engine — and one training run)."""
        if not isinstance(request.engine, str):
            if request.train_clips:
                raise ServiceError(
                    "train_clips only applies to registry-built engines; "
                    "train the instance before submitting"
                )
            return request.engine
        key = (
            request.engine,
            tuple(sorted(
                (k, repr(v)) for k, v in request.engine_overrides.items()
            )),
            tuple(clip.name for clip in request.train_clips),
        )
        engine = self._engines.get(key)
        if engine is None:
            engine = create_engine(
                request.engine, self.simulator, request.engine_overrides
            )
            if request.train_clips:
                train = getattr(engine, "train", None)
                if not callable(train):
                    raise ServiceError(
                        f"engine {request.engine!r} has no train() method "
                        "but the request carries train_clips"
                    )
                train(list(request.train_clips))
            self._engines[key] = engine
        return engine

    # -- submission / execution ----------------------------------------------
    def submit(self, request: OptRequest) -> int:
        """Queue a request; returns its ticket id (position-stable)."""
        if not isinstance(request, OptRequest):
            raise ServiceError(
                f"submit() takes an OptRequest, got {type(request).__name__}"
            )
        ticket = self._next_id
        self._next_id += 1
        self._pending.append((ticket, request))
        return ticket

    @property
    def pending(self) -> int:
        return len(self._pending)

    def run_all(self, verify: bool = True) -> list[OptResult]:
        """Drain the queue in submission order and return all results.

        Optimizations run sequentially (use :meth:`map_suite` for the
        thread-pooled path); afterwards every verifiable outcome joins
        one shape-binned batched re-simulation pass, and any engine whose
        reported EPE drifts from the independent re-measurement by more
        than ``verify_tolerance_nm`` raises :class:`MetrologyError`.
        """
        queued = self._pending
        self._pending = []
        executed = []
        for ticket, request in queued:
            engine = self.engine_for(request)
            outcome = engine.optimize(
                request.clip, **dict(request.optimize_kwargs)
            )
            executed.append((ticket, request, engine, outcome))
        return self._finalize(executed, verify)

    def map_suite(
        self,
        engines: Mapping[str, Any] | Sequence[str],
        clips: Iterable[Clip],
        max_workers: int | None = None,
        verify: bool = True,
        **optimize_kwargs,
    ) -> dict:
        """Run several engines over one suite, thread-pooled per engine.

        ``engines`` maps display labels to engine specs (registry names
        or instances); a bare sequence of names labels each engine by its
        name.  Every engine sweeps the full suite in clip order on its
        own thread — an engine instance is never shared between threads,
        so per-engine numbers are identical to a sequential sweep — then
        all outcomes from all engines share **one** verification pass
        whose scheduler bins by grid shape across the whole suite-cross-
        engine matrix.  Returns ``{label:
        :class:`~repro.eval.metrics.SuiteResult`}`` in ``engines`` order.
        """
        from repro.eval.metrics import SuiteResult  # avoid eval<->service cycle

        if isinstance(engines, Mapping):
            specs = dict(engines)
        else:
            specs = {name: name for name in engines}
        if not specs:
            raise ServiceError("map_suite needs at least one engine")
        clip_list = list(clips)
        if not clip_list:
            raise ServiceError("map_suite needs at least one clip")

        # Resolve (and train) engines up front, in label order, on the
        # calling thread — construction order stays deterministic.
        resolved = {
            label: self.engine_for(OptRequest(clip=clip_list[0], engine=spec))
            for label, spec in specs.items()
        }
        requests: list[tuple[int, OptRequest, Any]] = []
        for label in specs:
            for clip in clip_list:
                request = OptRequest(
                    clip=clip,
                    engine=resolved[label],
                    optimize_kwargs=dict(optimize_kwargs),
                    verify=verify,
                )
                ticket = self._next_id
                self._next_id += 1
                requests.append((ticket, request, label))

        def sweep(label: str) -> list:
            engine = resolved[label]
            return [
                engine.optimize(clip, **optimize_kwargs) for clip in clip_list
            ]

        workers = max_workers or min(
            len(specs), max(os.cpu_count() or 1, 1)
        )
        if len({id(engine) for engine in resolved.values()}) < len(resolved):
            # Two labels resolved to one cached engine object; driving it
            # from two threads would interleave its internal state, so
            # fall back to the sequential sweep (numbers are identical).
            workers = 1
        if workers > 1 and len(specs) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcome_lists = list(pool.map(sweep, specs))
        else:
            outcome_lists = [sweep(label) for label in specs]

        executed = []
        by_label: dict[str, list[OptResult]] = {label: [] for label in specs}
        cursor = iter(requests)
        for label, outcomes in zip(specs, outcome_lists):
            for outcome in outcomes:
                ticket, request, _ = next(cursor)
                executed.append((ticket, request, resolved[label], outcome))
        results = self._finalize(executed, verify)
        for (ticket, request, label), result in zip(requests, results):
            by_label[label].append(result)
        suites: dict[str, SuiteResult] = {}
        for label in specs:
            suite = SuiteResult(engine=label)
            for result in by_label[label]:
                suite.add(result.to_row())
            suites[label] = suite
        return suites

    # -- shared tail: verification + result assembly --------------------------
    def _finalize(
        self, executed: list[tuple[int, OptRequest, Any, Any]], verify: bool
    ) -> list[OptResult]:
        measured: dict[int, float] = {}
        if verify:
            for ticket, request, engine, outcome in executed:
                if not request.verify:
                    continue
                search_nm = (
                    float(request.epe_search_nm)
                    if request.epe_search_nm is not None
                    else engine_epe_search_nm(engine)
                )
                self.scheduler.add_outcome(
                    ticket, request.clip, outcome, self.simulator, search_nm
                )
            measured = self.scheduler.flush(self.simulator)

        results = []
        for ticket, request, engine, outcome in executed:
            verified = measured.get(ticket)
            reported = float(outcome.epe_total)
            if verified is not None:
                drift = abs(verified - reported)
                if drift > self.verify_tolerance_nm:
                    raise MetrologyError(
                        f"{request.engine_label} reported EPE "
                        f"{reported:.6f} nm on {request.clip.name} but "
                        f"batched re-simulation measured {verified:.6f} nm "
                        f"(drift {drift:.2e})"
                    )
            results.append(OptResult(
                request_id=ticket,
                clip_name=request.clip.name,
                engine=request.engine_label,
                epe_nm=reported,
                pvband_nm2=float(outcome.pvband),
                runtime_s=float(outcome.runtime_s),
                steps=int(outcome.steps),
                early_exited=bool(outcome.early_exited),
                verified_epe_nm=verified,
                outcome=outcome,
            ))
        return results

    # -- introspection --------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Serving counters: verification batching + spectra-store state."""
        info: dict[str, Any] = {
            "requests_issued": self._next_id,
            "pending": len(self._pending),
            "engines_cached": len(self._engines),
            "verify_batch_calls": self.scheduler.batch_calls,
            "verify_items": self.scheduler.items_flushed,
        }
        store = self.simulator.spectra_store()
        if store is not None:
            info["spectra_store"] = {"root": store.root, **store.stats()}
        return info
