"""`MaskOptService`: the serving front door for mask optimization.

One service instance owns a shared :class:`LithographySimulator`
(optionally backed by a disk-persistent kernel-spectra store), an engine
cache, a submission queue, and the shape-binned verification scheduler.
Callers either queue :class:`~repro.service.api.OptRequest` records with
:meth:`MaskOptService.submit` and drain them with
:meth:`~MaskOptService.run_all`, or hand a whole benchmark suite to
:meth:`~MaskOptService.map_suite`, which fans the engines out over a
thread pool (the scipy FFT backend releases the GIL, so litho work
genuinely overlaps on multi-core hosts) and still funnels *all*
verification through one cross-engine batched pass.

For throughput *within* one engine's suite,
:meth:`~MaskOptService.run_suite_sharded` (also reachable as
``map_suite(workers=N)`` and ``python -m repro optimize --workers N``)
partitions the clip list across N spawned worker processes that share
one on-disk kernel-spectra store and stream outcomes back as they
finish; verification overlaps optimization by draining full shape bins
early (:meth:`~repro.service.scheduler.ShapeBinScheduler.flush_ready`).

Numerical contract: results are bit-for-bit identical to calling each
engine's ``optimize`` directly and re-measuring masks one at a time —
engines run unmodified, the scheduler's batched re-simulation is
batch-size independent by construction, and neither threading nor
process sharding reorders any per-engine computation (each engine
instance is driven by exactly one thread, shard workers rebuild their
engines from a deterministic spec, and the litho caches they share are
value-deterministic).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import MetrologyError, ServiceError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service.api import OptRequest, OptResult
from repro.service.journal import open_journal
from repro.service.registry import build_engine, engine_epe_search_nm
from repro.service.scheduler import ShapeBinScheduler
from repro.service.sharding import EngineSpec, ShardedSuiteRunner

DEFAULT_RETRIES = 2
"""Default per-request retry budget for infrastructure faults on the
sharded/daemon paths (engine exceptions are never retried)."""

_VERIFY_TOLERANCE_NM = 1e-6


class MaskOptService:
    """Request/response mask optimization over one shared simulator.

    Thread-safety: *submission* is concurrent-safe — ``submit`` (ticket
    minting and queueing) may be called from any number of threads.  The
    *execution* methods (``run_all``, ``map_suite``,
    ``run_suite_sharded``) drive the one shared verification scheduler
    and must not overlap each other on the same service instance; give
    each driving thread its own service (they can share a simulator —
    its caches are value-deterministic).
    """

    def __init__(
        self,
        simulator: LithographySimulator | None = None,
        litho_config: LithoConfig | None = None,
        verify_tolerance_nm: float = _VERIFY_TOLERANCE_NM,
        verify_eval: str = "sparse",
    ) -> None:
        """``verify_eval`` selects the verification engine: ``"sparse"``
        (default) evaluates intensity only at each clip's measure-point
        stencils — same measured EPE to <= 1e-9 nm, a fraction of the
        litho work — while ``"dense"`` retains the full
        ``simulate_batch`` pipeline bit-for-bit (see
        :class:`~repro.service.scheduler.ShapeBinScheduler`)."""
        if simulator is not None and litho_config is not None:
            raise ServiceError(
                "pass either a simulator or a litho_config, not both"
            )
        if simulator is None:
            simulator = LithographySimulator(litho_config or LithoConfig())
        self.simulator = simulator
        self.verify_tolerance_nm = float(verify_tolerance_nm)
        self.scheduler = ShapeBinScheduler(verify_eval=verify_eval)
        self._pending: list[tuple[int, OptRequest]] = []
        self._engines: dict[tuple, Any] = {}
        self._next_id = 0
        self._lock = threading.Lock()

    def _allocate_tickets(self, count: int) -> list[int]:
        """Mint ``count`` consecutive ticket ids (thread-safe: concurrent
        submitters must never receive the same ticket, which an unlocked
        read-increment-write on ``_next_id`` allowed)."""
        with self._lock:
            first = self._next_id
            self._next_id += count
        return list(range(first, first + count))

    # -- engine management ---------------------------------------------------
    def engine_for(self, request: OptRequest):
        """Resolve a request's engine (instances pass through; registry-
        name and factory builds are cached per (spec, overrides,
        training suite) so a suite of requests shares one engine — and
        one training run).

        The get/build/insert runs under the service lock: two threads
        resolving the same key concurrently would otherwise both build
        (and both *train*) an engine, with one winning the cache and the
        other silently producing numbers from a duplicate — the build
        cost is paid once, holding submitters out for its duration.
        """
        if not isinstance(request.engine, str) and callable(
            getattr(request.engine, "optimize", None)
        ):
            if request.train_clips:
                raise ServiceError(
                    "train_clips only applies to registry- or factory-"
                    "built engines; train the instance before submitting"
                )
            return request.engine
        key = (
            request.engine,
            tuple(sorted(
                (k, repr(v)) for k, v in request.engine_overrides.items()
            )),
            tuple(clip.name for clip in request.train_clips),
        )
        with self._lock:
            engine = self._engines.get(key)
            if engine is None:
                engine = build_engine(
                    request.engine, self.simulator, request.engine_overrides
                )
                if request.train_clips:
                    train = getattr(engine, "train", None)
                    if not callable(train):
                        raise ServiceError(
                            f"engine {request.engine!r} has no train() "
                            "method but the request carries train_clips"
                        )
                    train(list(request.train_clips))
                self._engines[key] = engine
        return engine

    # -- submission / execution ----------------------------------------------
    def submit(self, request: OptRequest) -> int:
        """Queue a request; returns its ticket id (position-stable)."""
        if not isinstance(request, OptRequest):
            raise ServiceError(
                f"submit() takes an OptRequest, got {type(request).__name__}"
            )
        (ticket,) = self._allocate_tickets(1)
        with self._lock:
            self._pending.append((ticket, request))
        return ticket

    @property
    def pending(self) -> int:
        return len(self._pending)

    def run_all(self, verify: bool = True) -> list[OptResult]:
        """Drain the queue in submission order and return all results.

        Optimizations run sequentially (use :meth:`map_suite` for the
        thread-pooled path); afterwards every verifiable outcome joins
        one shape-binned batched re-simulation pass, and any engine whose
        reported EPE drifts from the independent re-measurement by more
        than ``verify_tolerance_nm`` raises :class:`MetrologyError`.
        """
        with self._lock:
            queued = self._pending
            self._pending = []
        executed = []
        for ticket, request in queued:
            engine = self.engine_for(request)
            outcome = engine.optimize(
                request.clip, **dict(request.optimize_kwargs)
            )
            executed.append((ticket, request, engine, outcome))
        return self._finalize(executed, verify)

    def map_suite(
        self,
        engines: Mapping[str, Any] | Sequence[str],
        clips: Iterable[Clip],
        max_workers: int | None = None,
        verify: bool = True,
        workers: int | None = None,
        stream_min_bin: int | None = None,
        retries: int = DEFAULT_RETRIES,
        deadline_s: float | None = None,
        journal: Any = None,
        **optimize_kwargs,
    ) -> dict:
        """Run several engines over one suite, parallelized two ways.

        ``engines`` maps display labels to engine specs (registry names,
        ``(name, overrides)`` pairs, or instances); a bare sequence of
        names labels each engine by its name.

        With the default ``workers=None`` every engine sweeps the full
        suite in clip order on its own thread (``max_workers`` threads;
        an engine instance is never shared between threads, so per-engine
        numbers are identical to a sequential sweep) and all outcomes
        from all engines share **one** terminal verification pass whose
        scheduler bins by grid shape across the whole suite-cross-engine
        matrix.

        With ``workers=N > 1`` each engine's suite is additionally
        *process-sharded*: N spawned workers split the clip list, stream
        outcomes back as they finish, and verification drains full shape
        bins while optimization is still running
        (:meth:`run_suite_sharded`; engines then run one after another,
        each owning the whole worker fleet).  Sharded specs must be
        buildable in a child process — registry names or ``(name,
        overrides)`` pairs, not instances.  Sharding reorders work, never
        numbers: results are bit-for-bit identical to the thread/
        sequential path.

        Returns ``{label: :class:`~repro.eval.metrics.SuiteResult`}`` in
        ``engines`` order.
        """
        from repro.eval.metrics import SuiteResult  # avoid eval<->service cycle

        if isinstance(engines, Mapping):
            specs = dict(engines)
        else:
            specs = {name: name for name in engines}
        if not specs:
            raise ServiceError("map_suite needs at least one engine")
        clip_list = list(clips)
        if not clip_list:
            raise ServiceError("map_suite needs at least one clip")

        # A journal implies the sharded (spec-buildable) path even at
        # workers=1: journal records are keyed by the EngineSpec
        # fingerprint, which engine *instances* (threaded path) cannot
        # provide.
        if (workers is not None and workers > 1) or journal is not None:
            workers = max(1, int(workers or 1))
            journal_obj, journal_owned = open_journal(journal)
            try:
                suites: dict[str, SuiteResult] = {}
                for label, spec in specs.items():
                    name, overrides = self._shardable_spec(label, spec)
                    results = self.run_suite_sharded(
                        name, clip_list, workers=workers,
                        engine_overrides=overrides, verify=verify,
                        stream_min_bin=stream_min_bin, retries=retries,
                        deadline_s=deadline_s, journal=journal_obj,
                        **optimize_kwargs,
                    )
                    suite = SuiteResult(engine=label)
                    for result in results:
                        suite.add(result.to_row())
                    suites[label] = suite
                return suites
            finally:
                if journal_owned:
                    journal_obj.close()

        # Resolve (and train) engines up front, in label order, on the
        # calling thread — construction order stays deterministic.
        resolved = {
            label: self.engine_for(self._spec_request(spec, clip_list[0]))
            for label, spec in specs.items()
        }
        requests: list[tuple[int, OptRequest, Any]] = []
        tickets = iter(self._allocate_tickets(len(specs) * len(clip_list)))
        for label in specs:
            for clip in clip_list:
                request = OptRequest(
                    clip=clip,
                    engine=resolved[label],
                    optimize_kwargs=dict(optimize_kwargs),
                    verify=verify,
                )
                requests.append((next(tickets), request, label))

        def sweep(label: str) -> list:
            engine = resolved[label]
            return [
                engine.optimize(clip, **optimize_kwargs) for clip in clip_list
            ]

        threads = max_workers or min(
            len(specs), max(os.cpu_count() or 1, 1)
        )
        if len({id(engine) for engine in resolved.values()}) < len(resolved):
            # Two labels resolved to one cached engine object; driving it
            # from two threads would interleave its internal state, so
            # fall back to the sequential sweep (numbers are identical).
            threads = 1
        if threads > 1 and len(specs) > 1:
            with ThreadPoolExecutor(max_workers=threads) as pool:
                outcome_lists = list(pool.map(sweep, specs))
        else:
            outcome_lists = [sweep(label) for label in specs]

        executed = []
        by_label: dict[str, list[OptResult]] = {label: [] for label in specs}
        cursor = iter(requests)
        for label, outcomes in zip(specs, outcome_lists):
            for outcome in outcomes:
                ticket, request, _ = next(cursor)
                executed.append((ticket, request, resolved[label], outcome))
        results = self._finalize(executed, verify)
        for (ticket, request, label), result in zip(requests, results):
            by_label[label].append(result)
        suites = {}
        for label in specs:
            suite = SuiteResult(engine=label)
            for result in by_label[label]:
                suite.add(result.to_row())
            suites[label] = suite
        return suites

    @staticmethod
    def _spec_request(spec, clip: Clip) -> OptRequest:
        """A resolution request for one map_suite engine spec (name,
        ``(name, overrides)`` pair, or instance)."""
        if isinstance(spec, tuple):
            name, overrides = spec
            return OptRequest(
                clip=clip, engine=name, engine_overrides=dict(overrides)
            )
        return OptRequest(clip=clip, engine=spec)

    @staticmethod
    def _shardable_spec(label: str, spec) -> tuple[Any, dict]:
        """Split a map_suite spec into (buildable engine, overrides) for
        the sharded path, rejecting instances (which cannot cross a
        process boundary)."""
        if isinstance(spec, tuple):
            name, overrides = spec
            return name, dict(overrides)
        if isinstance(spec, str) or callable(spec):
            return spec, {}
        raise ServiceError(
            f"engine {label!r} is an instance; process-sharded map_suite "
            "(workers>1) rebuilds engines in worker processes, so pass a "
            "registry name, a (name, overrides) pair, or a factory callable"
        )

    # -- process-sharded execution ---------------------------------------------
    def run_suite_sharded(
        self,
        engine: Any,
        clips: Iterable[Clip],
        workers: int,
        engine_overrides: Mapping[str, Any] | None = None,
        verify: bool = True,
        stream_min_bin: int | None = None,
        dispatch: str = "steal",
        retries: int = DEFAULT_RETRIES,
        deadline_s: float | None = None,
        stall_timeout_s: float | None = None,
        journal: Any = None,
        fault_plan: Any = None,
        **optimize_kwargs,
    ) -> list[OptResult]:
        """Sweep one engine over a suite with N worker processes,
        verifying full shape bins while workers are still optimizing.

        ``engine`` must be buildable in a child process: a registry name
        or a picklable factory callable, plus ``engine_overrides`` — each
        worker rebuilds the engine from that spec against its own
        simulator (sharing this service's
        :class:`~repro.litho.simulator.LithoConfig`, including
        ``spectra_store=``, so all workers warm one on-disk kernel-
        spectra store).  Workers pull clips from a shared work-stealing
        queue (``dispatch="static"`` restores the PR 5 round-robin deal
        for A/B benchmarking), so skewed suites load-balance.  As
        outcomes stream back, every one joins the shape-binned scheduler
        and any bin reaching ``stream_min_bin`` masks (default
        ``max(4, 2 * workers)``) is flushed immediately — verification
        overlaps optimization instead of serializing after it; a
        terminal flush drains the remainder.  Results are bit-for-bit
        identical to the sequential sweep: sharding and work stealing
        reorder work, never numbers.  ``workers=1`` runs inline (no
        processes) through the identical code path.

        Returns one :class:`OptResult` per clip, in clip order; the
        ``raw_outcome`` of each is the streamed picklable
        :class:`~repro.service.sharding.OptOutcome`, not the engine's
        in-process outcome object.

        Delivery semantics: a worker that crashes (or is stall-killed)
        mid-clip has its task re-dispatched up to ``retries`` times with
        exponential backoff — deterministic engines make the retried
        outcome bit-for-bit identical; out of budget the sweep fails
        with :class:`~repro.errors.RetriesExhausted`.  Engine
        *exceptions* are never retried (they would fail identically) and
        surface immediately.  ``deadline_s`` bounds each clip's
        wall-clock from submission (:class:`~repro.errors.
        DeadlineExceeded`); ``stall_timeout_s`` kills a worker whose
        claim sits unchanged that long, converting hangs into retriable
        crashes.

        ``journal`` (an :class:`~repro.service.journal.OutcomeJournal`
        or a path) logs every admission up front and every clip's result
        the moment its verification lands, fsync'd — a killed sweep
        keeps its completed clips and
        :func:`~repro.service.journal.resume_suite` re-runs only the
        rest.

        Note that ``**optimize_kwargs`` shares the signature with the
        named parameters above (as with ``map_suite``): an engine whose
        ``optimize`` takes a kwarg literally named ``workers``, ``verify``,
        ``engine_overrides``, or ``stream_min_bin`` cannot receive it
        through this method — drive :class:`~repro.service.sharding.
        ShardedSuiteRunner` directly for that.
        """
        clip_list = list(clips)
        if not clip_list:
            raise ServiceError("run_suite_sharded needs at least one clip")
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if stream_min_bin is None:
            stream_min_bin = max(4, 2 * int(workers))
        elif stream_min_bin < 1:
            raise ServiceError(
                f"stream_min_bin must be >= 1, got {stream_min_bin}"
            )
        # EngineSpec validates eagerly: instances (which cannot cross a
        # process boundary) are rejected here, not at Process.start().
        spec = EngineSpec(
            engine=engine,
            litho=self.simulator.config,
            overrides=tuple(sorted((engine_overrides or {}).items())),
        )
        label = spec.label
        tickets = self._allocate_tickets(len(clip_list))
        requests = [
            OptRequest(
                clip=clip,
                engine=label,
                engine_overrides=dict(engine_overrides or {}),
                optimize_kwargs=dict(optimize_kwargs),
                verify=verify,
            )
            for clip in clip_list
        ]
        measured: dict[int, float] = {}
        journal_obj, journal_owned = open_journal(journal)
        fingerprint = spec.fingerprint() if journal_obj is not None else None
        arrived: dict[int, Any] = {}
        journaled: set[int] = set()

        def journal_ready() -> None:
            """Log every arrived clip whose result is final: verified
            (measurement landed) or exempt (verify off).  Runs the same
            single-result assembly (including the drift check) the
            terminal pass will — a journaled record is a *certified*
            record, durable the moment its verification flushes, so a
            SIGKILL later in the sweep cannot take it back."""
            if journal_obj is None:
                return
            for index, payload in arrived.items():
                ticket = tickets[index]
                if index in journaled or (verify and ticket not in measured):
                    continue
                (result,) = self._assemble(
                    [(ticket, requests[index], payload)], measured, verify,
                )
                journal_obj.log_result(ticket, result, fingerprint)
                journaled.add(index)

        def on_outcome(index: int, payload) -> None:
            arrived[index] = payload
            if verify:
                added = self.scheduler.add_outcome(
                    tickets[index], clip_list[index], payload,
                    self.simulator, payload.epe_search_nm,
                )
                if added:
                    measured.update(
                        self.scheduler.flush_ready(
                            self.simulator, min_bin=stream_min_bin
                        )
                    )
            journal_ready()

        runner = ShardedSuiteRunner(
            spec, workers, dispatch=dispatch, retries=retries,
            deadline_s=deadline_s, stall_timeout_s=stall_timeout_s,
            fault_plan=fault_plan,
        )
        try:
            if journal_obj is not None:
                for ticket, clip in zip(tickets, clip_list):
                    journal_obj.log_admit(ticket, clip, label, fingerprint)
            payloads = runner.run(
                clip_list, optimize_kwargs, on_outcome=on_outcome,
                capture_masks=verify,
            )
            if verify:
                measured.update(self.scheduler.flush(self.simulator))
            journal_ready()
            executed = [
                (ticket, request, payload)
                for ticket, request, payload
                in zip(tickets, requests, payloads)
            ]
            return self._assemble(executed, measured, verify)
        except BaseException:
            # The sweep died mid-stream (or its terminal flush / drift
            # check raised): take back whatever this run queued so a
            # caller that catches the error and reuses the service
            # doesn't re-simulate stale masks next pass.
            self.scheduler.discard(tickets)
            raise
        finally:
            if journal_owned:
                journal_obj.close()

    # -- shared tail: verification + result assembly --------------------------
    def _finalize(
        self, executed: list[tuple[int, OptRequest, Any, Any]], verify: bool
    ) -> list[OptResult]:
        """Queue every verifiable outcome, flush, drift-check, assemble.

        On *any* failure past the point where outcomes entered the
        shared scheduler — a flush that raises mid-way, a drift check
        that raises :class:`MetrologyError` — this run's tickets are
        taken back out (``discard``), exactly as ``run_suite_sharded``
        does: a caller that catches the error and reuses the service
        must not re-simulate (or mis-attribute) this run's stale masks
        on its next verification pass.
        """
        measured: dict[int, float] = {}
        tickets = [ticket for ticket, _, _, _ in executed]
        try:
            if verify:
                for ticket, request, engine, outcome in executed:
                    if not request.verify:
                        continue
                    search_nm = (
                        float(request.epe_search_nm)
                        if request.epe_search_nm is not None
                        else engine_epe_search_nm(engine)
                    )
                    self.scheduler.add_outcome(
                        ticket, request.clip, outcome, self.simulator,
                        search_nm,
                    )
                measured = self.scheduler.flush(self.simulator)
            return self._assemble(
                [(ticket, request, outcome)
                 for ticket, request, _, outcome in executed],
                measured,
                verify,
            )
        except BaseException:
            self.scheduler.discard(tickets)
            raise

    def _assemble(
        self,
        executed: list[tuple[int, OptRequest, Any]],
        measured: dict[int, float],
        verify: bool,
    ) -> list[OptResult]:
        """Drift-check every measured outcome and build the result
        records.

        An outcome whose final mask could not be recovered (nothing to
        re-simulate) is *not* silently passed off as unverified: when
        verification was requested it comes back with
        ``outcome="unverifiable"`` so callers that require certification
        can reject it explicitly.
        """
        results = []
        for ticket, request, outcome in executed:
            verified = measured.get(ticket)
            reported = float(outcome.epe_total)
            if verified is not None:
                drift = abs(verified - reported)
                if drift > self.verify_tolerance_nm:
                    raise MetrologyError(
                        f"{request.engine_label} reported EPE "
                        f"{reported:.6f} nm on {request.clip.name} but "
                        f"batched re-simulation measured {verified:.6f} nm "
                        f"(drift {drift:.2e})"
                    )
                status = "verified"
            elif verify and request.verify:
                status = "unverifiable"
            else:
                status = "unverified"
            results.append(OptResult(
                request_id=ticket,
                clip_name=request.clip.name,
                engine=request.engine_label,
                epe_nm=reported,
                pvband_nm2=float(outcome.pvband),
                runtime_s=float(outcome.runtime_s),
                steps=int(outcome.steps),
                early_exited=bool(outcome.early_exited),
                verified_epe_nm=verified,
                outcome=status,
                raw_outcome=outcome,
            ))
        return results

    # -- introspection --------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Serving counters: verification batching + spectra-store state.

        Safe to call from any thread while a verifier thread is
        flushing — the scheduler counters come from one locked snapshot
        instead of torn attribute reads.
        """
        with self._lock:
            issued = self._next_id
            queued = len(self._pending)
            engines_cached = len(self._engines)
        verify = self.scheduler.counters()
        info: dict[str, Any] = {
            "requests_issued": issued,
            "pending": queued,
            "engines_cached": engines_cached,
            "verify_batch_calls": verify["batch_calls"],
            "verify_items": verify["items_flushed"],
            "verify_pending": verify["pending"],
        }
        store = self.simulator.spectra_store()
        if store is not None:
            info["spectra_store"] = {"root": store.root, **store.stats()}
        return info
