"""Engine registry: every OPC engine behind one constructor-by-name.

The service (and the ``python -m repro`` CLI) refer to engines by short
names; each name maps to a factory ``(simulator, overrides) -> engine``
building the engine's config dataclass from the override mapping, so a
request can carry plain ``{"max_updates": 5}``-style dictionaries
instead of importing config classes.  All built engines satisfy the
:class:`repro.eval.runner.OPCEngine` protocol.

Out of the box: ``camo`` (the paper's agent), ``mbopc`` (the
Calibre-like model-based baseline, alias ``calibre``), ``rlopc``,
``damo``, ``ilt``, and ``surrogate`` (CFNO-lite screening with exact
verification).  Third-party engines join via :func:`register_engine`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import ServiceError
from repro.litho.simulator import LithographySimulator

EngineFactory = Callable[[LithographySimulator, dict], Any]

DEFAULT_EPE_SEARCH_NM = 40.0
"""Contour-search fallback for engines without the config knob."""


def engine_epe_search_nm(engine) -> float:
    """The contour-search range an engine's own metrology used.

    Engines without the config knob fall back to the shared default,
    mirroring what their environments do internally.  Lives here (not in
    the service module) so shard workers resolve the exact same range
    the sequential verification path does — a drifting duplicate would
    silently break the sharded-vs-sequential bit-for-bit pin.
    """
    return float(
        getattr(getattr(engine, "config", None), "epe_search_nm",
                DEFAULT_EPE_SEARCH_NM)
    )


def _camo(simulator: LithographySimulator, overrides: dict):
    from repro.core.agent import CAMO
    from repro.core.config import CamoConfig

    return CAMO(CamoConfig(**overrides), simulator)


def _mbopc(simulator: LithographySimulator, overrides: dict):
    from repro.baselines.mbopc import MBOPC, MBOPCConfig

    return MBOPC(MBOPCConfig(**overrides), simulator)


def _rlopc(simulator: LithographySimulator, overrides: dict):
    from repro.baselines.rlopc import RLOPC, RLOPCConfig

    return RLOPC(RLOPCConfig(**overrides), simulator)


def _damo(simulator: LithographySimulator, overrides: dict):
    from repro.baselines.damo import DamoConfig, DamoLikeOPC

    return DamoLikeOPC(DamoConfig(**overrides), simulator)


def _ilt(simulator: LithographySimulator, overrides: dict):
    from repro.baselines.ilt import ILTConfig, PixelILT

    return PixelILT(ILTConfig(**overrides), simulator)


def _surrogate(simulator: LithographySimulator, overrides: dict):
    from repro.surrogate.engine import SurrogateConfig, SurrogateOPC

    return SurrogateOPC(SurrogateConfig(**overrides), simulator)


_REGISTRY: dict[str, EngineFactory] = {
    "camo": _camo,
    "mbopc": _mbopc,
    "calibre": _mbopc,
    "rlopc": _rlopc,
    "damo": _damo,
    "ilt": _ilt,
    "surrogate": _surrogate,
}


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def register_engine(
    name: str, factory: EngineFactory, overwrite: bool = False
) -> None:
    """Add (or replace, with ``overwrite=True``) an engine factory."""
    if not name or not isinstance(name, str):
        raise ServiceError(f"engine name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ServiceError(
            f"engine {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    if not callable(factory):
        raise ServiceError(f"engine factory for {name!r} is not callable")
    _REGISTRY[name] = factory


def create_engine(
    name: str,
    simulator: LithographySimulator,
    overrides: Mapping[str, Any] | None = None,
):
    """Build a registered engine against ``simulator``.

    ``overrides`` are keyword arguments for the engine's config
    dataclass; unknown fields surface as the config's own ``TypeError``
    / ``ConfigError`` so typos fail loudly at request time, not inside a
    batch.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ServiceError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(available_engines())}"
        )
    try:
        return factory(simulator, dict(overrides or {}))
    except TypeError as exc:
        raise ServiceError(
            f"bad overrides for engine {name!r}: {exc}"
        ) from exc


def build_engine(
    spec: str | EngineFactory,
    simulator: LithographySimulator,
    overrides: Mapping[str, Any] | None = None,
):
    """Build an engine from a *buildable spec*: a registry name or a
    factory callable with the :data:`EngineFactory` signature.

    This is the constructor shard workers run — the spec (unlike an
    engine instance) is picklable, so it can cross a process boundary
    and be rebuilt against the worker's own simulator.  Registrations
    made with :func:`register_engine` are per-process and do *not*
    travel to spawned workers; pass the factory itself instead.
    """
    if isinstance(spec, str):
        return create_engine(spec, simulator, overrides)
    if callable(spec):
        return spec(simulator, dict(overrides or {}))
    raise ServiceError(
        "engine spec must be a registry name or a factory callable, got "
        f"{type(spec).__name__}"
    )


def spec_label(spec: str | EngineFactory) -> str:
    """Display label for a buildable engine spec."""
    if isinstance(spec, str):
        return spec
    return getattr(spec, "__name__", type(spec).__name__)


def overrides_key(
    overrides: Mapping[str, Any] | None,
) -> tuple[tuple[str, str], ...]:
    """Canonical hashable key for an override mapping: sorted
    ``(name, repr(value))`` pairs.

    One definition for every identity built on overrides — the daemon's
    pool cache key, :class:`~repro.service.sharding.EngineSpec`
    normalization, and the journal's engine fingerprint all must agree,
    or "same spec" would mean different things to different layers.
    """
    return tuple(
        sorted((str(k), repr(v)) for k, v in dict(overrides or {}).items())
    )
