"""Always-on async serving daemon over :class:`MaskOptService`.

Every execution path before this module is a *sweep*: the caller hands
over a batch, blocks until the batch is done, and the worker fleet dies
with the call.  :class:`MaskOptDaemon` turns the service into a
long-running process: an ``asyncio`` front door accepts
:class:`~repro.service.api.OptRequest` records continuously
(:meth:`~MaskOptDaemon.submit`), dispatches them to **persistent warm
worker pools** (:class:`~repro.service.workqueue.WorkStealingPool`, one
per engine spec, workers built once and reused across requests), and
resolves each request's future as its verified result streams back
(:meth:`~MaskOptDaemon.result` / :meth:`~MaskOptDaemon.results`).

Architecture — three threads around one event loop::

    event loop (caller's)          collector thread       verifier thread
    ---------------------          ----------------       ---------------
    submit(request, tenant)
      admission control ───ServiceBusy when tenant full
      per-tenant FIFO
      round-robin dispatch ──▶ pool task queues
                                   drains the shared
                                   relay of all pools:
                                   ok ──verify?──────────▶ scheduler.add
                                   ok (no verify) ─┐        flush_ready /
                                   error ──────────┤        idle flush
                                   crash ► revive ─┤        drift check
                                                   ▼            │
                              future.set_result / set_exception ◀┘
                                   (loop.call_soon_threadsafe)

* The **collector** owns every pool's message stream (all pools share
  one relay queue, each message tagged with its pool).  It routes ``ok``
  payloads to the verifier (or straight to assembly for ``verify=False``
  requests), turns per-task ``error`` messages into failed futures, and
  on its idle polls runs the liveness check: a crashed worker fails only
  the ticket it had claimed (named via the pool's shared-memory claims
  array) and is **revived** — the daemon keeps serving, one lost request
  does not become an outage.
* The **verifier** owns the service's shape-binned scheduler.  Outcomes
  join their bin as they arrive; any bin reaching ``stream_min_bin``
  masks flushes immediately, and when the daemon goes quiescent (nothing
  queued or in flight) stragglers are flushed after ``flush_idle_s`` —
  or unconditionally once a mask has waited ``flush_max_wait_s``, so a
  lone request on an idle daemon is never parked indefinitely waiting
  for bin-mates.  Drift checks run per result: a diverging engine fails
  *that* future with :class:`~repro.errors.MetrologyError` instead of
  tearing the daemon down.

Admission control is per **tenant**: each tenant name has a bounded
number of requests outstanding (queued + in flight + awaiting
verification); past ``max_pending`` the daemon raises
:class:`~repro.errors.ServiceBusy` instead of buffering without bound.
Dispatch round-robins across tenants with queued work, so one chatty
tenant cannot starve the others, and each pool accepts at most
``pool_backlog`` undone tasks — the rest wait in tenant queues where
they can still be shed.

Numerical contract: the daemon path is bit-for-bit identical to
:meth:`~repro.service.service.MaskOptService.run_suite_sharded` (and
therefore to the sequential sweep).  Work stealing moves clips between
workers, never numbers; the batched verification is batch-composition
independent, so *when* a bin flushes cannot change a measurement
(``tests/test_service_daemon.py`` pins this).

The daemon owns its service exclusively — do not drive ``run_all`` /
``map_suite`` on the same instance while the daemon is running (they
share the verification scheduler).
"""

from __future__ import annotations

import asyncio
import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, AsyncIterator, Iterable

from repro.errors import (
    DeadlineExceeded,
    MetrologyError,
    RetriesExhausted,
    ServiceBusy,
    ServiceError,
)
from repro.litho.simulator import LithoConfig
from repro.service.api import OptRequest, OptResult
from repro.service.journal import open_journal
from repro.service.service import DEFAULT_RETRIES, MaskOptService
from repro.service.sharding import EngineSpec
from repro.service.workqueue import (
    CRASH_GRACE_S,
    DEFAULT_START_METHOD,
    POLL_INTERVAL_S,
    Task,
    WorkStealingPool,
)

DEFAULT_MAX_PENDING = 32
DEFAULT_FLUSH_IDLE_S = 0.2
DEFAULT_FLUSH_MAX_WAIT_S = 2.0

_VERIFIER_STOP = object()


@dataclass
class _TicketState:
    """Loop-side record of one accepted, unresolved request."""

    future: asyncio.Future
    tenant: str
    fingerprint: str | None = None


class MaskOptDaemon:
    """Always-on asyncio front door over one :class:`MaskOptService`.

    Usage::

        async with MaskOptDaemon(workers=4) as daemon:
            ticket = await daemon.submit(OptRequest(clip=clip))
            result = await daemon.result(ticket)

    Construction is cheap; :meth:`start` (or ``async with``) arms the
    collector/verifier threads, and worker pools spawn lazily the first
    time an engine spec is dispatched.  :meth:`shutdown` drains in-flight
    work (by default), stops the threads, and tears every pool down.

    Thread/loop contract: ``submit`` / ``result`` / ``results`` /
    ``drain`` / ``shutdown`` are coroutines and must run on the loop
    that called :meth:`start`.  :meth:`stats` may be called from any
    thread.
    """

    def __init__(
        self,
        service: MaskOptService | None = None,
        litho_config: LithoConfig | None = None,
        *,
        workers: int = 2,
        dispatch: str = "steal",
        max_pending: int = DEFAULT_MAX_PENDING,
        pool_backlog: int | None = None,
        stream_min_bin: int | None = None,
        flush_idle_s: float = DEFAULT_FLUSH_IDLE_S,
        flush_max_wait_s: float = DEFAULT_FLUSH_MAX_WAIT_S,
        start_method: str = DEFAULT_START_METHOD,
        grace_s: float = CRASH_GRACE_S,
        max_revives: int | None = None,
        retries: int = DEFAULT_RETRIES,
        deadline_s: float | None = None,
        stall_timeout_s: float | None = None,
        journal: Any = None,
        fault_plan: Any = None,
    ) -> None:
        if service is not None and litho_config is not None:
            raise ServiceError(
                "pass either a service or a litho_config, not both"
            )
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ServiceError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if pool_backlog is None:
            pool_backlog = 2 * int(workers)
        if pool_backlog < 1:
            raise ServiceError(
                f"pool_backlog must be >= 1, got {pool_backlog}"
            )
        if stream_min_bin is None:
            stream_min_bin = max(2, int(workers))
        if stream_min_bin < 1:
            raise ServiceError(
                f"stream_min_bin must be >= 1, got {stream_min_bin}"
            )
        self.service = service or MaskOptService(litho_config=litho_config)
        self.workers = int(workers)
        self.dispatch = dispatch
        self.max_pending = int(max_pending)
        self.pool_backlog = int(pool_backlog)
        self.stream_min_bin = int(stream_min_bin)
        self.flush_idle_s = float(flush_idle_s)
        self.flush_max_wait_s = float(flush_max_wait_s)
        self.start_method = start_method
        self.grace_s = float(grace_s)
        # A worker that keeps dying (e.g. during bootstrap, before it can
        # even send a "fatal") would otherwise be revived forever; past
        # this many revives the whole pool is retired as failed.
        self.max_revives = (
            3 * self.workers if max_revives is None else int(max_revives)
        )
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if deadline_s is not None and not deadline_s > 0:
            raise ServiceError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        self.retries = int(retries)
        self.deadline_s = deadline_s
        self.stall_timeout_s = stall_timeout_s
        self.fault_plan = fault_plan
        self._journal, self._journal_owned = open_journal(journal)

        self._state = "new"
        self._loop: asyncio.AbstractEventLoop | None = None
        self._idle = asyncio.Event()

        # Loop-side state (touched only from the event loop).
        self._states: dict[int, _TicketState] = {}
        self._done: dict[int, asyncio.Future] = {}
        self._tenant_queues: dict[str, deque] = {}
        self._tenant_rr: deque[str] = deque()
        self._tenant_outstanding: dict[str, int] = {}
        self._queued_count = 0

        # Cross-thread state.
        self._relay: queue_mod.Queue = queue_mod.Queue()
        self._verify_inbox: queue_mod.Queue = queue_mod.Queue()
        self._stop_collector = threading.Event()
        self._collector: threading.Thread | None = None
        self._verifier: threading.Thread | None = None
        self._pools_lock = threading.Lock()
        self._pools: dict[tuple, WorkStealingPool] = {}
        self._static_rr: dict[tuple, int] = {}  # loop-side, dispatch="static"
        self._failed_pools: set = set()  # collector-thread-owned
        # Dispatched-but-unanswered tickets: written by the dispatcher
        # (loop), removed by the collector when the payload arrives.
        self._routed_lock = threading.Lock()
        self._routed: dict[int, tuple[OptRequest, WorkStealingPool]] = {}
        self._counter_lock = threading.Lock()
        self._counters = {
            "submitted": 0, "rejected": 0, "completed": 0, "failed": 0,
            "retried": 0, "deadline_exceeded": 0, "retries_exhausted": 0,
        }
        self._last_sweep = 0.0  # collector-thread-owned

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "MaskOptDaemon":
        """Arm the daemon on the current event loop."""
        if self._state != "new":
            raise ServiceError(
                f"daemon is {self._state}; create a fresh one"
            )
        self._loop = asyncio.get_running_loop()
        self._idle.set()
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="repro-daemon-collect"
        )
        self._verifier = threading.Thread(
            target=self._verify_loop, daemon=True, name="repro-daemon-verify"
        )
        self._state = "running"
        self._collector.start()
        self._verifier.start()
        return self

    async def __aenter__(self) -> "MaskOptDaemon":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown(drain=exc_type is None)

    async def drain(self) -> None:
        """Wait until nothing is queued, in flight, or awaiting
        verification."""
        await self._idle.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the daemon.  ``drain=True`` (the default) first waits for
        every accepted request to resolve; ``drain=False`` abandons the
        backlog — unresolved futures fail with :class:`ServiceError`.
        Idempotent."""
        if self._state == "stopped":
            return
        if self._state == "new":
            self._state = "stopped"
            return
        if drain and self._state == "running":
            await self._idle.wait()
        self._state = "stopping"
        assert self._loop is not None
        self._verify_inbox.put(_VERIFIER_STOP)
        if self._verifier is not None:
            await self._loop.run_in_executor(None, self._verifier.join)
        self._stop_collector.set()
        if self._collector is not None:
            await self._loop.run_in_executor(None, self._collector.join)
        with self._pools_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            # After a drain the pools are idle and a graceful stop is
            # instant; an abandoning shutdown must *not* wait for the
            # backlog — terminate the workers.
            await self._loop.run_in_executor(
                None, lambda p=pool: p.shutdown(graceful=drain)
            )
        leftover = ServiceError(
            "daemon shut down before this request completed"
        )
        for ticket in list(self._states):
            self._resolve(ticket, None, leftover)
        for tenant_queue in self._tenant_queues.values():
            tenant_queue.clear()
        self._queued_count = 0
        with self._routed_lock:
            self._routed.clear()
        if self._journal_owned and self._journal is not None:
            self._journal.close()
        self._idle.set()
        self._state = "stopped"

    def _require_running(self) -> None:
        if self._state != "running":
            raise ServiceError(f"daemon is {self._state}, not running")

    # -- submission (event loop) ---------------------------------------------
    async def submit(self, request: OptRequest, tenant: str = "default") -> int:
        """Accept one request; returns its ticket id immediately.

        Raises :class:`ServiceBusy` when ``tenant`` already has
        ``max_pending`` requests outstanding — admission control sheds
        load explicitly instead of buffering without bound.  The request
        must be *spawnable* (registry name or factory callable; engine
        instances and ``train_clips`` cannot cross the process boundary
        into the warm pool).
        """
        self._require_running()
        if not isinstance(request, OptRequest):
            raise ServiceError(
                f"submit() takes an OptRequest, got {type(request).__name__}"
            )
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError("tenant must be a non-empty string")
        if request.train_clips:
            raise ServiceError(
                "train_clips cannot cross into the daemon's worker "
                "processes; train ahead of time and register a factory "
                "callable that builds the trained engine"
            )
        # EngineSpec validates eagerly: an engine instance is rejected
        # here with a clear error, not later inside Process.start().
        spec = EngineSpec(
            engine=request.engine,
            litho=self.service.simulator.config,
            overrides=tuple(sorted(request.engine_overrides.items())),
        )
        if self._tenant_outstanding.get(tenant, 0) >= self.max_pending:
            self._count("rejected")
            raise ServiceBusy(
                f"tenant {tenant!r} already has {self.max_pending} requests "
                "outstanding; back off and resubmit"
            )
        (ticket,) = self.service._allocate_tickets(1)
        assert self._loop is not None
        fingerprint = (
            spec.fingerprint() if self._journal is not None else None
        )
        if self._journal is not None:
            self._journal.log_admit(
                ticket, request.clip, spec.label, fingerprint
            )
        self._states[ticket] = _TicketState(
            future=self._loop.create_future(), tenant=tenant,
            fingerprint=fingerprint,
        )
        self._tenant_outstanding[tenant] = (
            self._tenant_outstanding.get(tenant, 0) + 1
        )
        if tenant not in self._tenant_queues:
            self._tenant_queues[tenant] = deque()
            self._tenant_rr.append(tenant)
        key = self._spec_key(request)
        self._tenant_queues[tenant].append((ticket, request, key, spec))
        self._queued_count += 1
        self._idle.clear()
        self._count("submitted")
        self._dispatch()
        return ticket

    @staticmethod
    def _spec_key(request: OptRequest) -> tuple:
        return (
            request.engine,
            tuple(sorted(
                (k, repr(v)) for k, v in request.engine_overrides.items()
            )),
        )

    def _dispatch(self) -> None:
        """Move queued requests into pool queues, round-robin across
        tenants, while pool backlogs allow.  Event-loop only."""
        if self._state != "running":
            return
        progressed = True
        while progressed:
            progressed = False
            for _ in range(len(self._tenant_rr)):
                tenant = self._tenant_rr[0]
                self._tenant_rr.rotate(-1)
                tenant_queue = self._tenant_queues.get(tenant)
                if not tenant_queue:
                    continue
                ticket, request, key, spec = tenant_queue[0]
                try:
                    pool = self._pool_for(key, spec)
                except ServiceError as exc:
                    tenant_queue.popleft()
                    self._queued_count -= 1
                    self._loop.call_soon(self._resolve, ticket, None, exc)
                    progressed = True
                    continue
                if pool.outstanding >= self.pool_backlog:
                    continue
                tenant_queue.popleft()
                self._queued_count -= 1
                with self._routed_lock:
                    self._routed[ticket] = (request, pool)
                if pool.dispatch == "static":
                    slot = self._static_rr.get(key, 0)
                    self._static_rr[key] = slot + 1
                    worker = slot % pool.workers
                else:
                    worker = None
                try:
                    pool.submit(Task(
                        task_id=ticket,
                        clip=request.clip,
                        optimize_kwargs=dict(request.optimize_kwargs),
                        capture_mask=request.verify,
                        retries=(
                            self.retries if request.retries is None
                            else request.retries
                        ),
                        deadline_s=(
                            self.deadline_s if request.deadline_s is None
                            else request.deadline_s
                        ),
                    ), worker=worker)
                except ServiceError as exc:
                    # The pool was torn down between lookup and submit
                    # (collector raced us on a fatal) — fail the ticket
                    # rather than strand it.
                    self._unroute(ticket)
                    self._loop.call_soon(
                        self._resolve, ticket, None, ServiceError(
                            f"dispatch to engine pool {pool.spec.label!r} "
                            f"failed: {exc}"
                        )
                    )
                progressed = True

    def _pool_for(self, key: tuple, spec: EngineSpec) -> WorkStealingPool:
        """The warm pool for an engine spec, spawning it on first use.
        Event-loop only (so there is no create race); the lock covers
        readers on other threads."""
        with self._pools_lock:
            pool = self._pools.get(key)
        if pool is not None:
            return pool
        pool = WorkStealingPool(
            spec, self.workers, start_method=self.start_method,
            dispatch=self.dispatch, relay=self._relay, grace_s=self.grace_s,
            stall_timeout_s=self.stall_timeout_s,
            fault_plan=self.fault_plan,
        )
        pool.start()
        with self._pools_lock:
            self._pools[key] = pool
        return pool

    # -- collector thread ----------------------------------------------------
    def _collect(self) -> None:
        """Drain the shared relay of every pool: route payloads, fail
        errored tickets, revive crashed workers, dispatch due retries,
        and declare missed deadlines."""
        while True:
            try:
                pool, message = self._relay.get(timeout=POLL_INTERVAL_S)
            except queue_mod.Empty:
                if self._stop_collector.is_set():
                    return
                self._sweep_liveness()
                continue
            fresh = pool.observe(message)
            kind, wid, task_id, payload = message
            if kind == "ok" and fresh:
                entry = self._unroute(task_id)
                if entry is not None:
                    request, _ = entry
                    if request.verify:
                        self._verify_inbox.put((task_id, request, payload))
                    else:
                        self._finish(task_id, request, payload, {}, False)
            elif kind == "error" and fresh:
                entry = self._unroute(task_id)
                if entry is not None:
                    request, _ = entry
                    self._resolve_soon(task_id, error=ServiceError(
                        f"{request.engine_label} failed optimizing clip "
                        f"{request.clip.name!r}: {payload}"
                    ))
            elif kind in ("fatal", "corrupt"):
                self._fail_pool(pool, kind, payload)
            # "ready" / "exit" are liveness bookkeeping, folded in above;
            # a stale ok/error (fresh=False) was a duplicate from a retry
            # race and is dropped so each ticket resolves exactly once.
            # Steady message traffic must not starve retry dispatch,
            # deadline scans, or crash detection.
            if time.monotonic() - self._last_sweep >= POLL_INTERVAL_S:
                self._sweep_liveness()

    def _pump_pools(self) -> None:
        """Dispatch due retries and surface missed deadlines on every
        pool.  Collector-thread only."""
        with self._pools_lock:
            pools = list(self._pools.values())
        for pool in pools:
            for event in pool.pump():
                if event.kind != "deadline":
                    continue
                task = event.task
                self._unroute(task.task_id)
                self._count("deadline_exceeded")
                self._resolve_soon(task.task_id, error=DeadlineExceeded(
                    f"request for clip {task.clip.name!r} "
                    f"({pool.spec.label}) missed its {task.deadline_s}s "
                    "deadline"
                ))

    def _sweep_liveness(self) -> None:
        """Poll pass: declare crashed workers, requeue or fail the ticket
        each one had claimed, revive the slot, and pump retry/deadline
        state — the daemon keeps serving."""
        self._last_sweep = time.monotonic()
        self._pump_pools()
        with self._pools_lock:
            pools = list(self._pools.values())
        for pool in pools:
            for dead in pool.check_dead():
                if dead.requeued:
                    # The claimed task went back on the retry heap with
                    # budget left; the ticket stays routed and will be
                    # re-dispatched by pump() after its backoff.
                    self._count("retried")
                elif dead.task is not None:
                    self._unroute(dead.task.task_id)
                    if dead.task.retries > 0:
                        self._count("retries_exhausted")
                        error: ServiceError = RetriesExhausted(
                            f"worker {dead.worker_id} ({pool.spec.label}) "
                            f"died with exit code {dead.exitcode} while "
                            f"optimizing clip {dead.task.clip.name!r}; "
                            f"retries exhausted after "
                            f"{dead.task.attempt + 1} attempts"
                        )
                    else:
                        error = ServiceError(
                            f"worker {dead.worker_id} ({pool.spec.label}) "
                            f"died with exit code {dead.exitcode} while "
                            f"optimizing clip {dead.task.clip.name!r}"
                        )
                    self._resolve_soon(dead.task.task_id, error=error)
                if pool.stats()["workers_revived"] >= self.max_revives:
                    self._fail_pool(
                        pool, "crash",
                        f"workers died {self.max_revives} times "
                        f"(last: worker {dead.worker_id}, exit code "
                        f"{dead.exitcode})",
                    )
                    break
                try:
                    pool.revive(dead.worker_id)
                except ServiceError:
                    pass  # slot came back by other means; keep serving

    def _fail_pool(self, pool: WorkStealingPool, kind: str, payload) -> None:
        """An engine spec cannot serve (build failed / stream corrupted):
        fail everything routed to its pool and retire it.  Queued
        requests for the spec will respawn a pool on next dispatch (and
        fail the same way if the spec is truly broken)."""
        if pool in self._failed_pools:
            return
        self._failed_pools.add(pool)
        reason = {
            "fatal": "could not build its engine",
            "corrupt": "corrupted its result stream",
            "crash": "lost its workers repeatedly",
        }[kind]
        with self._routed_lock:
            doomed = [
                ticket for ticket, (_, routed_pool) in self._routed.items()
                if routed_pool is pool
            ]
            for ticket in doomed:
                del self._routed[ticket]
        exc = ServiceError(
            f"engine pool {pool.spec.label!r} {reason}: {payload}"
        )
        for ticket in doomed:
            self._resolve_soon(ticket, error=exc)
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(self._drop_pool, pool)
        except RuntimeError:
            pass  # loop closed mid-shutdown
        pool.shutdown(graceful=False, timeout=1.0)

    def _drop_pool(self, pool: WorkStealingPool) -> None:
        with self._pools_lock:
            for key, candidate in list(self._pools.items()):
                if candidate is pool:
                    del self._pools[key]
        self._dispatch()

    def _unroute(self, ticket) -> tuple[OptRequest, WorkStealingPool] | None:
        with self._routed_lock:
            return self._routed.pop(ticket, None)

    # -- verifier thread -----------------------------------------------------
    def _verify_loop(self) -> None:
        """Dedicated verification thread: outcomes join the shape-binned
        scheduler as they arrive; full bins flush immediately, stragglers
        flush when the daemon goes quiescent or a mask has waited
        ``flush_max_wait_s``."""
        simulator = self.service.simulator
        scheduler = self.service.scheduler
        waiting: dict[int, tuple[OptRequest, Any, float]] = {}
        while True:
            try:
                item = self._verify_inbox.get(timeout=self.flush_idle_s)
            except queue_mod.Empty:
                if not waiting:
                    continue
                oldest = min(added for (_, _, added) in waiting.values())
                overdue = (
                    time.monotonic() - oldest >= self.flush_max_wait_s
                )
                if self._quiescent() or overdue:
                    measured = self._flush_guard(
                        waiting, lambda: scheduler.flush(simulator)
                    )
                    if measured:
                        self._drain_waiting(waiting, measured)
                continue
            if item is _VERIFIER_STOP:
                if waiting:
                    measured = self._flush_guard(
                        waiting, lambda: scheduler.flush(simulator)
                    )
                    if measured:
                        self._drain_waiting(waiting, measured)
                return
            ticket, request, payload = item
            search_nm = (
                float(request.epe_search_nm)
                if request.epe_search_nm is not None
                else float(payload.epe_search_nm)
            )
            added = scheduler.add_outcome(
                ticket, request.clip, payload, simulator, search_nm
            )
            if not added:
                # No recoverable final mask: resolve as "unverifiable".
                self._finish(ticket, request, payload, {}, True)
                continue
            waiting[ticket] = (request, payload, time.monotonic())
            measured = self._flush_guard(
                waiting,
                lambda: scheduler.flush_ready(
                    simulator, min_bin=self.stream_min_bin
                ),
            )
            if measured:
                self._drain_waiting(waiting, measured)

    def _flush_guard(self, waiting: dict, flush) -> dict | None:
        """Run one scheduler flush; a failure (injected fault, simulator
        error) fails every waiting ticket instead of killing the
        verifier thread — the daemon keeps serving, and the scheduler is
        purged of the doomed masks so later flushes don't inherit them."""
        try:
            return flush()
        except Exception as exc:
            self.service.scheduler.discard(tuple(waiting))
            for ticket, (request, _, _) in list(waiting.items()):
                self._resolve_soon(ticket, error=ServiceError(
                    f"verification flush failed for clip "
                    f"{request.clip.name!r}: {exc}"
                ))
            waiting.clear()
            return None

    def _quiescent(self) -> bool:
        """Nothing queued or in flight — no more masks are coming to fill
        bins, so flush what is waiting.  (A submit racing this check only
        costs a smaller batch, never a number.)"""
        with self._routed_lock:
            routed = len(self._routed)
        return routed == 0 and self._queued_count == 0

    def _drain_waiting(self, waiting: dict, measured: dict) -> None:
        for ticket, value in measured.items():
            entry = waiting.pop(ticket, None)
            if entry is None:
                continue  # foreign key (direct service use); not ours
            request, payload, _ = entry
            self._finish(ticket, request, payload, {ticket: value}, True)

    def _finish(
        self, ticket, request: OptRequest, payload, measured: dict,
        verify: bool,
    ) -> None:
        """Assemble one result (drift check included) and resolve its
        future.  A drifting engine fails *its* future with
        :class:`MetrologyError`; the daemon keeps serving."""
        try:
            result = self.service._assemble(
                [(ticket, request, payload)], measured, verify
            )[0]
        except MetrologyError as exc:
            self._resolve_soon(ticket, error=exc)
            return
        self._resolve_soon(ticket, result=result)

    # -- resolution (event loop) ---------------------------------------------
    def _resolve_soon(
        self, ticket, result: OptResult | None = None,
        error: BaseException | None = None,
    ) -> None:
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(
                self._resolve, ticket, result, error
            )
        except RuntimeError:
            pass  # loop closed; shutdown fails leftover tickets itself

    def _resolve(
        self, ticket, result: OptResult | None, error: BaseException | None,
    ) -> None:
        state = self._states.pop(ticket, None)
        if state is None:
            return
        self._tenant_outstanding[state.tenant] -= 1
        if (
            error is None
            and state.fingerprint is not None
            and self._journal is not None
        ):
            # Durability gate: the caller's future only reports success
            # once the verified result is fsync'd in the journal.
            try:
                self._journal.log_result(ticket, result, state.fingerprint)
            except ServiceError as exc:
                result, error = None, exc
        future = state.future
        if not future.done():
            if error is not None:
                future.set_exception(error)
                # Consume the exception so a failure the caller never
                # awaits doesn't spew "exception was never retrieved";
                # awaiting the future still raises it.
                future.exception()
            else:
                future.set_result(result)
        self._done[ticket] = future
        self._count("failed" if error is not None else "completed")
        if not self._states and self._queued_count == 0:
            self._idle.set()
        self._dispatch()

    # -- retrieval (event loop) ----------------------------------------------
    async def result(self, ticket: int) -> OptResult:
        """Await one ticket's result (raising its failure, if any)."""
        state = self._states.get(ticket)
        if state is not None:
            future = state.future
        else:
            future = self._done.get(ticket)
            if future is None:
                raise ServiceError(
                    f"unknown or already-retrieved ticket {ticket}"
                )
        try:
            return await future
        finally:
            self._done.pop(ticket, None)

    async def results(
        self, tickets: Iterable[int] | None = None
    ) -> AsyncIterator[OptResult]:
        """Yield results in **completion order** as they resolve.

        ``tickets=None`` covers everything currently outstanding or
        resolved-but-unretrieved.  A failed ticket raises its error at
        the point it would have been yielded.
        """
        if tickets is None:
            wanted = list(self._states) + list(self._done)
        else:
            wanted = list(tickets)
        by_future: dict[asyncio.Future, int] = {}
        for ticket in wanted:
            state = self._states.get(ticket)
            future = (
                state.future if state is not None
                else self._done.get(ticket)
            )
            if future is None:
                raise ServiceError(
                    f"unknown or already-retrieved ticket {ticket}"
                )
            by_future[future] = ticket
        pending = set(by_future)
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for future in done:
                self._done.pop(by_future[future], None)
                yield future.result()

    # -- introspection -------------------------------------------------------
    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] += 1

    def stats(self) -> dict[str, Any]:
        """Serving metrics: daemon counters, per-pool worker state, and
        the underlying service's verification/spectra counters.  Safe
        from any thread (best-effort snapshot, not a barrier)."""
        with self._counter_lock:
            counters = dict(self._counters)
        with self._routed_lock:
            in_flight = len(self._routed)
        with self._pools_lock:
            pool_stats = [pool.stats() for pool in self._pools.values()]
        tenants = {
            tenant: {
                "outstanding": self._tenant_outstanding.get(tenant, 0),
                "queued": len(self._tenant_queues.get(tenant, ())),
            }
            for tenant in self._tenant_rr
        }
        out = {
            "state": self._state,
            "dispatch": self.dispatch,
            "workers_per_pool": self.workers,
            "max_pending": self.max_pending,
            "pool_backlog": self.pool_backlog,
            "stream_min_bin": self.stream_min_bin,
            "retries": self.retries,
            "deadline_s": self.deadline_s,
            **counters,
            "queued": self._queued_count,
            "in_flight": in_flight,
            "tenants": tenants,
            "pools": pool_stats,
            "service": self.service.stats(),
        }
        if self._journal is not None:
            out["journal"] = self._journal.stats()
        return out
