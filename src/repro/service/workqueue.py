"""Shared work-stealing task queue + persistent warm worker pools.

PR 5's :class:`~repro.service.sharding.ShardedSuiteRunner` dealt clips
round-robin at start-up: worker ``w`` owned ``clips[w::N]`` for the whole
sweep.  That is perfectly balanced only when every clip costs the same;
a heterogeneous suite (mixed grid sizes, early-exiting clips) leaves one
worker grinding through the expensive tail while its siblings idle.
:class:`WorkStealingPool` replaces the static deal with one **shared
task queue**: every worker pulls its next :class:`Task` the moment it
finishes the previous one, so load balances itself no matter how skewed
the suite is.  Because the service's results are order-independent (each
``optimize(clip)`` is deterministic from the spec alone, and
verification measurements are batch-composition independent), moving a
clip from one worker to another changes *wall-clock*, never a number —
the bit-for-bit contract survives unchanged.

The pool is also **persistent**: unlike the per-sweep fleets of PR 5, a
pool outlives any one suite.  Workers build their engine once (warming
from the shared kernel-spectra store) and then block on the queue, so an
always-on daemon (:mod:`repro.service.daemon`) keeps warm workers across
requests instead of paying spawn + engine build per sweep.

Delivery semantics (PR 7)
-------------------------

The pool is **at-least-once with exactly-once results**.  A task whose
worker dies mid-run is *re-enqueued* (up to ``task.retries`` extra
attempts, with exponential backoff), not failed; because every engine is
deterministic from its :class:`~repro.service.sharding.EngineSpec`, the
retried clip produces a bit-for-bit identical outcome on whichever
worker picks it up.  Results are deduplicated by task id: once a task
has completed, failed, or missed its deadline, any late ``ok``/``error``
for the same id is dropped (``observe`` returns ``False``), so a retry
can never double-report and a deadline failure can never be followed by
a surprise success.  Per-task deadlines and a stall detector (a claim
held unchanged for longer than ``stall_timeout_s`` gets its worker
killed) convert hung workers into the same retriable fault as a crash.

Threading contract
------------------

* ``submit`` may be called from any thread (it only touches the task
  registry under a lock and the queue's feeder thread).
* Exactly **one** consumer thread drives ``get_message`` / ``observe`` /
  ``check_dead`` / ``pump`` / ``revive`` / ``shutdown`` — the sweep loop
  in :class:`~repro.service.sharding.ShardedSuiteRunner`, or the
  daemon's collector thread.  All liveness, retry, and in-flight state
  is owned by that thread.

Liveness
--------

A worker whose process has an exit code but which never sent its clean
``exit`` message is *suspected* dead; because its final messages may
still be buffered in the pipe, the suspicion only becomes a verdict
after a grace window with no message from that worker.  **Any** message
from the worker resets the window (PR 5 started the window at the first
dry poll and never reset it, so a cleanly-finished worker whose large
mask payloads took longer than the grace period to drain was declared
crashed mid-sweep — the false positive this module fixes).  The grace
window also orders crash-after-result correctly: the completed payload
drains off the pipe (and dedup-registers its task as finished) before
the death verdict lands, so the verdict carries no task and triggers no
recompute.

Dispatch modes
--------------

``dispatch="steal"`` (the default) is the shared queue described above.
``dispatch="static"`` gives each worker a private queue and routes tasks
to an explicit worker slot — PR 5's round-robin deal, retained as the
baseline the work-stealing benchmark (``benchmarks/bench_daemon.py``)
measures against and as an escape hatch for workloads that want
placement pinned.  A retried task goes back to its original slot under
static dispatch, and to the shared queue under stealing.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.errors import ServiceError
from repro.geometry.layout import Clip
from repro.service.faults import install_fault_plan, maybe_fault

DEFAULT_START_METHOD = "spawn"
DISPATCH_MODES = ("steal", "static")

POLL_INTERVAL_S = 0.05
CRASH_GRACE_S = 1.0
"""A dead worker's last messages may still be in the pipe; only after
this long with *no* message from that worker is it declared crashed."""

RETRY_BACKOFF_S = 0.25
"""Base delay before a crashed task's first re-dispatch; doubles per
attempt (0.25, 0.5, 1.0, ...) so a systematically-crashing clip cannot
hot-loop the pool."""


@dataclass(frozen=True)
class Task:
    """One unit of pool work: optimize ``clip`` and stream the outcome.

    ``task_id`` is the caller's correlation key (the sharded runner uses
    the clip's suite index; the daemon uses the request ticket) — it
    comes back verbatim on the ``ok``/``error`` message and is the dedup
    key for retries.  ``retries`` is the number of *extra* attempts the
    pool may make after an infrastructure fault (worker crash or stall
    kill — engine exceptions are never retried, determinism makes that
    futile); ``attempt`` counts from 0 and is bumped on each re-enqueue.
    ``deadline_s`` is a wall-clock budget from submission; once elapsed
    the task fails with a deadline event whether queued, running, or
    waiting out a backoff.
    """

    task_id: int
    clip: Clip
    optimize_kwargs: dict = field(default_factory=dict)
    capture_mask: bool = True
    attempt: int = 0
    retries: int = 0
    deadline_s: float | None = None


@dataclass(frozen=True)
class DeadWorker:
    """A worker declared crashed: exit code + whatever it was running.

    ``requeued`` says what happened to the claimed task: ``True`` — it
    had retry budget left and is back on the queue (the consumer should
    revive the worker and move on); ``False`` — it is failed for good
    (no task, or retries exhausted).
    """

    worker_id: int
    exitcode: int | None
    task: Task | None
    requeued: bool = False


@dataclass(frozen=True)
class TaskEvent:
    """A task-level verdict surfaced by :meth:`WorkStealingPool.pump`.

    ``kind`` is currently only ``"deadline"``: the task's wall-clock
    budget elapsed and it has been failed (late results are deduped)."""

    kind: str
    task: Task


def describe_error(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


NO_CLAIM = -1
"""Sentinel in the shared claims array: this worker holds no task."""


def _pool_worker(
    worker_id: int, spec, task_queue, out_queue, claims,
    generation: int = 0, fault_plan=None,
) -> None:
    """Worker entry point: build the engine once, then serve the queue.

    Runs in a spawned child process.  Every message is a 4-tuple
    ``(kind, worker_id, task_id, payload)`` with kind one of ``"ready"``
    / ``"ok"`` / ``"error"`` / ``"fatal"`` / ``"exit"``.  A ``None`` on
    the task queue is the shutdown sentinel.  Task failures are streamed
    as ``error`` and the worker moves on — one bad clip must not take a
    persistent pool down with it.

    ``claims`` is the lock-free shared int64 array: slot ``worker_id``
    holds the task id this worker is running (or :data:`NO_CLAIM`).  It
    is written *directly to shared memory* before the optimize starts,
    so the parent can still name the in-flight clip when this process
    dies abruptly — an abrupt death sends no message at all, but the
    memory write is already visible.

    ``generation`` counts revivals of this slot (0 = first start), and
    ``fault_plan`` is the pool's explicit fault plan, installed before
    anything can fail; injection contexts carry the generation
    (``worker.build``) and the task attempt (everything else) so a rule
    can target "the first revival" or "attempt 0 of clip X" exactly.
    """
    from repro.service.registry import engine_epe_search_nm
    from repro.service.sharding import OptOutcome

    if fault_plan is not None:
        install_fault_plan(fault_plan)
    try:
        maybe_fault("worker.build", f"w{worker_id}g{generation}")
        if spec.seed is not None:
            np.random.seed(spec.seed)
        engine, simulator = spec.build()
        search_nm = engine_epe_search_nm(engine)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        out_queue.put(("fatal", worker_id, None, describe_error(exc)))
        return
    out_queue.put(("ready", worker_id, None, None))
    while True:
        task = task_queue.get()
        if task is None:
            claims[worker_id] = NO_CLAIM
            out_queue.put(("exit", worker_id, None, None))
            return
        claims[worker_id] = task.task_id
        context = f"{task.clip.name}@{task.attempt}"
        try:
            maybe_fault("worker.optimize", context)
            raw = engine.optimize(task.clip, **task.optimize_kwargs)
            payload = OptOutcome.from_raw(
                raw, task.clip, simulator, search_nm, worker=worker_id,
                capture_mask=task.capture_mask,
            )
            maybe_fault("worker.before_result", context)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
            out_queue.put(
                ("error", worker_id, task.task_id, describe_error(exc))
            )
            claims[worker_id] = NO_CLAIM
            continue
        torn = maybe_fault("pipe.frame", context)
        if torn is not None:
            # A worker SIGKILLed mid-payload-write leaves a frame on the
            # pipe that cannot unpickle; model it exactly, then die.
            out_queue._writer.send_bytes(b"repro-torn-frame")
            os._exit(torn.exit_code)
        out_queue.put(("ok", worker_id, task.task_id, payload))
        maybe_fault("worker.after_result", context)
        claims[worker_id] = NO_CLAIM


class WorkStealingPool:
    """N persistent worker processes pulling from a shared task queue.

    The pool owns the processes, the task/result queues, and the relay
    thread that drains the multiprocessing queue onto an in-process one
    (so a worker SIGKILLed mid-payload-write — a torn pipe frame — can
    only wedge the abandonable relay thread, never the consumer; the
    consumer's polls keep reaching the liveness check and the failure
    surfaces instead of hanging).
    """

    def __init__(
        self,
        spec,
        workers: int,
        start_method: str = DEFAULT_START_METHOD,
        dispatch: str = "steal",
        relay: queue_mod.Queue | None = None,
        grace_s: float = CRASH_GRACE_S,
        fault_plan=None,
        stall_timeout_s: float | None = None,
        retry_backoff_s: float = RETRY_BACKOFF_S,
    ) -> None:
        from repro.service.sharding import EngineSpec

        if not isinstance(spec, EngineSpec):
            raise ServiceError(
                f"WorkStealingPool needs an EngineSpec, got "
                f"{type(spec).__name__}"
            )
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if dispatch not in DISPATCH_MODES:
            raise ServiceError(
                f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}"
            )
        if stall_timeout_s is not None and stall_timeout_s <= 0:
            raise ServiceError(
                f"stall_timeout_s must be > 0, got {stall_timeout_s}"
            )
        self.spec = spec
        self.workers = int(workers)
        self.dispatch = dispatch
        self.grace_s = float(grace_s)
        self.stall_timeout_s = stall_timeout_s
        self.retry_backoff_s = float(retry_backoff_s)
        self._fault_plan = fault_plan
        self._ctx = mp.get_context(start_method)
        self._external_relay = relay is not None
        self._relay: queue_mod.Queue = relay if relay is not None \
            else queue_mod.Queue()
        # SimpleQueue, not Queue, for the worker->parent channel: its
        # put() writes synchronously to the pipe, so once a worker's put
        # returns the message is in OS buffers and survives the process
        # dying immediately afterwards.  A buffered Queue hands the
        # payload to a feeder thread that dies (payload and all) on
        # os._exit — which silently lost the result of a *completed*
        # task whenever the worker crashed on its next one.
        self._out_queue = self._ctx.SimpleQueue()
        n_queues = 1 if dispatch == "steal" else self.workers
        self._task_queues = [self._ctx.Queue() for _ in range(n_queues)]
        # Lock-free on purpose: a worker SIGKILLed mid-write under a
        # locked Array would leave the lock held and deadlock the
        # parent's read; a single aligned int64 store cannot tear.
        self._claims = self._ctx.Array("q", self.workers, lock=False)
        for wid in range(self.workers):
            self._claims[wid] = NO_CLAIM
        self._procs: list = [None] * self.workers
        self._generation = [0] * self.workers
        self._drainer: threading.Thread | None = None
        self._stop_draining = threading.Event()
        self._started = False
        self._closed = False
        # Task registry: submit() writes from any thread, the consumer
        # thread removes on completion.  ``_finished`` is the dedup set:
        # ids that completed, failed, or deadlined — late messages for
        # them are dropped.
        self._tasks_lock = threading.Lock()
        self._tasks: dict[int, Task] = {}
        self._finished: set[int] = set()
        self._deadline_at: dict[int, float] = {}
        self._slots: dict[int, int] = {}
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._revived = 0
        self._retried = 0
        self._deadline_failed = 0
        self._stalled = 0
        self._duplicates = 0
        # Consumer-thread-owned liveness / retry / progress state.
        self._ready: set[int] = set()
        self._exited: set[int] = set()
        self._dead_since: dict[int, float] = {}
        self._dead_handled: set[int] = set()
        self._per_worker_done = [0] * self.workers
        self._retry_heap: list[tuple[float, int, Task]] = []
        self._retry_seq = 0
        self._claim_seen: dict[int, tuple[int, float]] = {}

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise ServiceError("pool already started")
        self._started = True
        for wid in range(self.workers):
            self._procs[wid] = self._spawn(wid)
        self._drainer = threading.Thread(
            target=self._drain, daemon=True, name="repro-pool-drain"
        )
        self._drainer.start()

    def _spawn(self, wid: int):
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(wid, self.spec, self._queue_for(wid), self._out_queue,
                  self._claims, self._generation[wid], self._fault_plan),
            daemon=True,
            name=f"repro-pool-{self.spec.label}-{wid}",
        )
        proc.start()
        return proc

    def _queue_for(self, wid: int):
        return self._task_queues[0 if self.dispatch == "steal"
                                 else wid]

    def _drain(self) -> None:
        """Relay thread: multiprocessing queue -> in-process queue."""
        while not self._stop_draining.is_set():
            try:
                # SimpleQueue has no timed get; poll the reader pipe so
                # the stop flag is still honoured between messages.
                if not self._out_queue._reader.poll(POLL_INTERVAL_S):
                    continue
                message = self._out_queue.get()
            except BaseException as exc:  # noqa: BLE001 - relayed
                # Closed queue on shutdown, or a misframed payload from
                # a killed writer failing to unpickle.
                if not self._stop_draining.is_set():
                    self._put_relay(
                        ("corrupt", None, None, describe_error(exc))
                    )
                return
            self._put_relay(message)

    def _put_relay(self, message) -> None:
        self._relay.put((self, message) if self._external_relay
                        else message)

    # -- submission ----------------------------------------------------------
    def submit(self, task: Task, worker: int | None = None) -> int:
        """Queue a task; with ``dispatch="static"`` it goes to ``worker``'s
        private queue (required), with ``"steal"`` to the shared one
        (``worker`` must be omitted).  Thread-safe.
        """
        if not self._started or self._closed:
            raise ServiceError("pool is not running")
        if self.dispatch == "static":
            if worker is None:
                raise ServiceError(
                    "static dispatch needs an explicit worker slot"
                )
            if not 0 <= worker < self.workers:
                raise ServiceError(
                    f"worker must be in [0, {self.workers}), got {worker}"
                )
        elif worker is not None:
            raise ServiceError(
                "work-stealing dispatch does not pin tasks to workers"
            )
        with self._tasks_lock:
            if task.task_id in self._tasks:
                raise ServiceError(
                    f"task id {task.task_id} is already outstanding"
                )
            self._finished.discard(task.task_id)
            self._tasks[task.task_id] = task
            self._submitted += 1
            if task.deadline_s is not None:
                self._deadline_at[task.task_id] = (
                    time.monotonic() + task.deadline_s
                )
            if self.dispatch == "static":
                self._slots[task.task_id] = worker
        target = self._task_queues[0 if self.dispatch == "steal" else worker]
        target.put(task)
        return task.task_id

    def task_for(self, task_id: int) -> Task | None:
        with self._tasks_lock:
            return self._tasks.get(task_id)

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet completed or failed."""
        with self._tasks_lock:
            return len(self._tasks)

    # -- message consumption (single consumer thread) ------------------------
    def get_message(self, timeout: float = POLL_INTERVAL_S):
        """Next relayed message, or ``None`` on timeout (only valid for
        pools that own their relay; daemon pools share an external one
        and the collector reads it directly)."""
        if self._external_relay:
            raise ServiceError(
                "pool uses an external relay; read messages from it"
            )
        try:
            return self._relay.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def observe(self, message) -> bool:
        """Fold one message into liveness/progress state.  The consumer
        must call this for every message before acting on it.

        Returns ``False`` when the message is a *stale duplicate*: an
        ``ok``/``error`` for a task that already finished, failed, or
        deadlined (a retry's late sibling, or a result that outlived its
        deadline).  The consumer must not act on a stale message — this
        is the exactly-once half of the at-least-once contract.

        Any message from a worker resets its crash-suspicion window —
        a finished worker slowly draining large mask payloads is alive,
        not crashed.
        """
        kind, wid, task_id, _ = message
        if wid is None:
            return True
        self._dead_since.pop(wid, None)
        if kind == "ready":
            self._ready.add(wid)
        elif kind in ("ok", "error"):
            with self._tasks_lock:
                task = self._tasks.pop(task_id, None)
                if task is None:
                    self._duplicates += 1
                    return False
                self._finished.add(task_id)
                self._deadline_at.pop(task_id, None)
                self._slots.pop(task_id, None)
                if kind == "ok":
                    self._completed += 1
                else:
                    self._failed += 1
            if kind == "ok" and 0 <= wid < self.workers:
                self._per_worker_done[wid] += 1
        elif kind == "exit":
            self._exited.add(wid)
        return True

    def check_dead(self) -> list[DeadWorker]:
        """Workers whose processes died without a clean ``exit`` and
        whose grace window (since their *last* message) has elapsed.
        Each dead worker is reported exactly once (``revive`` re-arms
        its slot).

        A claimed task with retry budget left is **re-enqueued** (after
        an exponential backoff, via :meth:`pump`) and the verdict says
        ``requeued=True``; out of budget, the task is failed for good.
        """
        now = time.monotonic()
        verdicts = []
        for wid, proc in enumerate(self._procs):
            if (
                proc is None
                or wid in self._exited
                or wid in self._dead_handled
                or proc.exitcode is None
            ):
                continue
            first_seen = self._dead_since.setdefault(wid, now)
            if now - first_seen < self.grace_s:
                continue
            self._dead_handled.add(wid)
            self._claim_seen.pop(wid, None)
            claimed = self._claims[wid]
            task = None
            requeued = False
            if claimed != NO_CLAIM:
                with self._tasks_lock:
                    task = self._tasks.get(claimed)
                    if task is not None and task.attempt < task.retries:
                        requeued = True
                        self._retried += 1
                        # One object for both registry and heap: pump's
                        # identity check drops a heap entry whose task
                        # was superseded (deadline, later retry).
                        bumped = replace(task, attempt=task.attempt + 1)
                        self._tasks[claimed] = bumped
                    elif task is not None:
                        self._tasks.pop(claimed)
                        self._finished.add(claimed)
                        self._deadline_at.pop(claimed, None)
                        self._slots.pop(claimed, None)
                        self._failed += 1
                if requeued:
                    delay = self.retry_backoff_s * (2 ** task.attempt)
                    self._retry_seq += 1
                    heapq.heappush(
                        self._retry_heap,
                        (now + delay, self._retry_seq, bumped),
                    )
            verdicts.append(
                DeadWorker(worker_id=wid, exitcode=proc.exitcode,
                           task=task, requeued=requeued)
            )
        return verdicts

    def pump(self) -> list[TaskEvent]:
        """Advance retry and deadline state; the consumer calls this on
        every loop iteration (messages and timeouts alike).

        Three scans, all cheap when idle:

        1. Re-dispatch retried tasks whose backoff elapsed.
        2. Fail tasks whose wall-clock deadline elapsed (returned as
           ``TaskEvent("deadline", task)``; late results are deduped).
        3. Kill workers whose claim has sat unchanged for longer than
           ``stall_timeout_s`` — the death then flows through
           :meth:`check_dead` and the retry path like any crash.
        """
        now = time.monotonic()
        events: list[TaskEvent] = []
        # 1. backoffs that came due
        while self._retry_heap and self._retry_heap[0][0] <= now:
            _, _, task = heapq.heappop(self._retry_heap)
            with self._tasks_lock:
                live = self._tasks.get(task.task_id) is task
                slot = self._slots.get(task.task_id, 0)
            if not live:
                continue  # deadlined (or otherwise finished) while waiting
            target = self._task_queues[
                0 if self.dispatch == "steal" else slot
            ]
            target.put(task)
        # 2. elapsed deadlines
        expired: list[Task] = []
        with self._tasks_lock:
            for task_id, due_at in list(self._deadline_at.items()):
                if now < due_at:
                    continue
                task = self._tasks.pop(task_id, None)
                del self._deadline_at[task_id]
                self._slots.pop(task_id, None)
                if task is None:
                    continue
                self._finished.add(task_id)
                self._deadline_failed += 1
                self._failed += 1
                expired.append(task)
        events.extend(TaskEvent("deadline", task) for task in expired)
        # 3. stalled claims
        if self.stall_timeout_s is not None:
            for wid, proc in enumerate(self._procs):
                if proc is None or proc.exitcode is not None:
                    continue
                claimed = self._claims[wid]
                if claimed == NO_CLAIM:
                    self._claim_seen.pop(wid, None)
                    continue
                seen = self._claim_seen.get(wid)
                if seen is None or seen[0] != claimed:
                    self._claim_seen[wid] = (claimed, now)
                    continue
                if now - seen[1] < self.stall_timeout_s:
                    continue
                with self._tasks_lock:
                    live = claimed in self._tasks
                if live:
                    proc.kill()
                    self._stalled += 1
                self._claim_seen.pop(wid, None)
        return events

    def revive(self, worker_id: int) -> None:
        """Replace a dead worker's process so the pool keeps serving.

        The replacement rebuilds its engine from the same spec (warming
        from the shared spectra store, so the rebuild is cheap) and
        pulls from the same queue(s) — queued tasks are unaffected.
        """
        if not 0 <= worker_id < self.workers:
            raise ServiceError(f"no worker slot {worker_id}")
        old = self._procs[worker_id]
        if old is not None and old.exitcode is None:
            raise ServiceError(
                f"worker {worker_id} is still alive; nothing to revive"
            )
        self._dead_since.pop(worker_id, None)
        self._dead_handled.discard(worker_id)
        self._exited.discard(worker_id)
        self._ready.discard(worker_id)
        self._claim_seen.pop(worker_id, None)
        self._claims[worker_id] = NO_CLAIM
        self._generation[worker_id] += 1
        self._procs[worker_id] = self._spawn(worker_id)
        self._revived += 1

    # -- teardown ------------------------------------------------------------
    def shutdown(self, graceful: bool = True, timeout: float = 5.0) -> None:
        """Stop the pool.  ``graceful=True`` sends one shutdown sentinel
        per worker (FIFO after all queued tasks, so workers drain the
        queue first) and waits; either way every process is down and the
        queues are closed when this returns.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if graceful and self._started:
            if self.dispatch == "steal":
                for wid in range(self.workers):
                    if wid not in self._exited:
                        self._task_queues[0].put(None)
            else:
                for wid, task_queue in enumerate(self._task_queues):
                    if wid not in self._exited:
                        task_queue.put(None)
            deadline = time.monotonic() + timeout
            for proc in self._procs:
                if proc is None:
                    continue
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
        self._stop_draining.set()
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=timeout)
        for task_queue in self._task_queues:
            task_queue.close()
        self._out_queue.close()

    # -- introspection -------------------------------------------------------
    def alive_workers(self) -> int:
        return sum(
            1 for proc in self._procs
            if proc is not None and proc.exitcode is None
        )

    def stats(self) -> dict[str, Any]:
        with self._tasks_lock:
            submitted = self._submitted
            completed = self._completed
            failed = self._failed
            retried = self._retried
            deadline_failed = self._deadline_failed
            duplicates = self._duplicates
            outstanding = len(self._tasks)
        return {
            "engine": self.spec.label,
            "dispatch": self.dispatch,
            "workers": self.workers,
            "workers_alive": self.alive_workers(),
            "workers_ready": len(self._ready),
            "workers_revived": self._revived,
            "workers_stalled": self._stalled,
            "tasks_submitted": submitted,
            "tasks_completed": completed,
            "tasks_failed": failed,
            "tasks_retried": retried,
            "tasks_deadline_failed": deadline_failed,
            "tasks_outstanding": outstanding,
            "duplicates_dropped": duplicates,
            "per_worker_completed": list(self._per_worker_done),
        }
