"""Typed request/response records of the mask-optimization service.

:class:`OptRequest` is the unit of work a caller hands to
:class:`~repro.service.service.MaskOptService`; :class:`OptResult` is
what comes back.  Both are plain dataclasses so they serialize trivially
(``OptResult.to_dict`` feeds the CLI's ``--json`` output) and carry no
behaviour beyond validation — scheduling, engine construction, and
metrology live in the service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ServiceError
from repro.geometry.layout import Clip


@dataclass(frozen=True)
class OptRequest:
    """One clip to optimize.

    Attributes:
        clip: The layout window to correct.
        engine: A registry name (``"camo"``, ``"mbopc"`` /
            ``"calibre"``, ``"rlopc"``, ``"damo"``, ``"ilt"`` — see
            :mod:`repro.service.registry`), a factory callable
            ``(simulator, overrides) -> engine`` (the picklable spec
            process-sharded paths and the daemon need), or an
            already-constructed engine instance implementing the
            ``OPCEngine`` protocol (anything with
            ``optimize(clip, **kwargs)``).
        engine_overrides: Config-field overrides applied when the engine
            is built from a registry name or factory (rejected for
            instances, which arrive fully configured).
        optimize_kwargs: Extra keyword arguments forwarded to
            ``engine.optimize`` (e.g. ``max_updates=``).
        verify: Whether this request participates in the shape-binned
            batched re-simulation cross-check after optimization.
        epe_search_nm: Contour search range for the verification
            metrology; ``None`` resolves to the engine config's
            ``epe_search_nm`` (falling back to the shared 40 nm default)
            so a correctly-reporting engine is never flagged as drifting.
        train_clips: Clips to train a registry-built engine on before its
            first optimization (engines without a ``train`` method, like
            MB-OPC and pixel ILT, reject non-empty values).
        retries: Extra attempts the daemon may make after an
            infrastructure fault (worker crash, stall kill) on this
            request; ``None`` uses the daemon's default.  Engine
            exceptions are never retried — deterministic engines fail
            identically on every attempt.
        deadline_s: Wall-clock budget from dispatch; once elapsed the
            request fails with :class:`~repro.errors.DeadlineExceeded`
            and any late result is discarded.  ``None`` (default) means
            no deadline.
    """

    clip: Clip
    engine: Any = "mbopc"
    engine_overrides: Mapping[str, Any] = field(default_factory=dict)
    optimize_kwargs: Mapping[str, Any] = field(default_factory=dict)
    verify: bool = True
    epe_search_nm: float | None = None
    train_clips: tuple[Clip, ...] = ()
    retries: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.clip, Clip):
            raise ServiceError(
                f"OptRequest.clip must be a Clip, got {type(self.clip).__name__}"
            )
        if isinstance(self.engine, str) and not self.engine:
            raise ServiceError("OptRequest.engine name must be non-empty")
        if not isinstance(self.engine, str):
            is_instance = callable(getattr(self.engine, "optimize", None))
            if not is_instance and not callable(self.engine):
                raise ServiceError(
                    "OptRequest.engine must be a registry name, a factory "
                    "callable, or an object with an optimize(clip) method"
                )
            if is_instance and self.engine_overrides:
                raise ServiceError(
                    "engine_overrides only apply to registry- or factory-"
                    "built engines; configure the instance directly instead"
                )
        if self.epe_search_nm is not None and self.epe_search_nm <= 0:
            raise ServiceError(
                f"epe_search_nm must be positive, got {self.epe_search_nm}"
            )
        if self.retries is not None and (
            not isinstance(self.retries, int) or self.retries < 0
        ):
            raise ServiceError(
                f"retries must be a non-negative integer, got "
                f"{self.retries!r}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ServiceError(
                f"deadline_s must be positive, got {self.deadline_s!r}"
            )

    @property
    def engine_label(self) -> str:
        """Human-readable engine identifier for results and logs."""
        if isinstance(self.engine, str):
            return self.engine
        if callable(getattr(self.engine, "optimize", None)):
            return getattr(self.engine, "name", type(self.engine).__name__)
        return getattr(self.engine, "__name__", type(self.engine).__name__)


VERIFICATION_OUTCOMES = ("verified", "unverified", "unverifiable")
"""The three terminal verification states of a request (see
:attr:`OptResult.outcome`)."""


@dataclass(frozen=True)
class OptResult:
    """The service's answer for one :class:`OptRequest`.

    ``epe_nm`` / ``pvband_nm2`` are the numbers the engine itself
    reported; ``verified_epe_nm`` is the shape-binned batched
    re-simulation's independent measurement (``None`` when verification
    was skipped) — the service raises
    :class:`~repro.errors.MetrologyError` before returning if the two
    drift apart, so a populated field certifies agreement.

    ``outcome`` states how verification ended: ``"verified"`` (the
    re-measurement ran and agreed), ``"unverified"`` (the caller opted
    out), or ``"unverifiable"`` (verification was requested but the
    engine's final mask could not be recovered — neither a
    ``final_state`` nor a ``mask_image`` on its outcome — so no
    independent number exists; callers who require certification must
    treat this as a failure, the service won't silently drop it).
    """

    request_id: int
    clip_name: str
    engine: str
    epe_nm: float
    pvband_nm2: float
    runtime_s: float
    steps: int
    early_exited: bool
    verified_epe_nm: float | None = None
    outcome: str = "unverified"
    raw_outcome: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.outcome not in VERIFICATION_OUTCOMES:
            raise ServiceError(
                f"OptResult.outcome must be one of {VERIFICATION_OUTCOMES}, "
                f"got {self.outcome!r}"
            )

    def to_row(self):
        """Project onto the comparison-table record
        (:class:`repro.eval.metrics.EngineRow`) used by the tables."""
        # Imported lazily: repro.eval's package __init__ pulls in the
        # runner, which itself builds on this service package.
        from repro.eval.metrics import EngineRow

        return EngineRow(
            clip_name=self.clip_name,
            epe_nm=self.epe_nm,
            pvband_nm2=self.pvband_nm2,
            runtime_s=self.runtime_s,
            steps=self.steps,
            early_exited=self.early_exited,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (drops the in-memory outcome object)."""
        return {
            "request_id": self.request_id,
            "clip": self.clip_name,
            "engine": self.engine,
            "epe_nm": self.epe_nm,
            "pvband_nm2": self.pvband_nm2,
            "runtime_s": self.runtime_s,
            "steps": self.steps,
            "early_exited": self.early_exited,
            "verified_epe_nm": self.verified_epe_nm,
            "outcome": self.outcome,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptResult":
        """Rebuild a result from its :meth:`to_dict` form — the journal
        replay path.  ``raw_outcome`` does not survive the round trip
        (it was never serialized); everything the drift check certified
        does."""
        try:
            return cls(
                request_id=int(data["request_id"]),
                clip_name=str(data["clip"]),
                engine=str(data["engine"]),
                epe_nm=float(data["epe_nm"]),
                pvband_nm2=float(data["pvband_nm2"]),
                runtime_s=float(data["runtime_s"]),
                steps=int(data["steps"]),
                early_exited=bool(data["early_exited"]),
                verified_epe_nm=(
                    None if data.get("verified_epe_nm") is None
                    else float(data["verified_epe_nm"])
                ),
                outcome=str(data.get("outcome", "unverified")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"bad OptResult record: {exc}"
            ) from exc
