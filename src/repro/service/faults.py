"""Deterministic, seed-driven fault injection for the serving stack.

Every recovery path PR 7 adds — re-dispatch of a crashed worker's task,
stall detection, result dedup, journal resume, corrupt-store rebuild —
must be exercised by ordinary pytest tests, not by luck.  This module is
the injection plane: a picklable :class:`FaultPlan` carries a list of
:class:`FaultRule`\\ s, each naming an **injection point** (a string like
``"worker.before_result"``), an action, and a deterministic firing
condition.  Production code calls :func:`maybe_fault` at each point;
with no plan installed that is a single ``None`` check.

Injection points (the set is open — any string works — but these are
the ones wired into the stack):

========================  =====================================================
``worker.build``          in a pool worker, around the engine build; context
                          ``"w{worker_id}g{generation}"`` (generation counts
                          revivals, so ``g1`` targets the *first revival*)
``worker.optimize``       in a pool worker, after the claim is written and
                          before ``engine.optimize``; context
                          ``"{clip}@{attempt}"``
``worker.before_result``  after the optimize finished, before the result hits
                          the pipe (a crash here loses completed work — the
                          retry must recompute it)
``worker.after_result``   after the result's synchronous pipe write returned
                          (a crash here must NOT trigger a recompute — the
                          parent already holds the payload)
``pipe.frame``            instead of the result: write a torn/garbage frame
                          to the result pipe and die (``corrupt`` action)
``verifier.flush``        in :meth:`ShapeBinScheduler._flush_keys`, before a
                          bin is measured; context ``str(bin_key)``
``store.save``            after a spectra entry is atomically written;
                          a ``corrupt`` rule flips one byte of the entry
``store.load``            before a spectra entry is read; context is the path
``journal.append``        before a journal record is framed and written
========================  =====================================================

Determinism
-----------

Two firing modes, both reproducible:

* **Hit-count** (``at=(1, 3)``): the rule fires on the 1st and 3rd
  *matching* arrival at its point, counted per plan instance (so per
  process — a retried task arriving at a fresh worker starts that
  worker's counters at zero, which is why contexts carry the attempt
  number: ``match="boom@0"`` crashes attempt 0 wherever it lands and
  leaves attempt 1 alone).  ``at=()`` with no ``rate`` fires on every
  matching hit.
* **Seeded rate** (``rate=0.3``): fires iff
  ``sha256(seed | point | context)`` maps below the rate — a pure
  function of the plan seed and the context, identical in every
  process and on every run.  This is what the CI chaos matrix sweeps:
  a given seed yields one fixed fault pattern, so a passing seed can
  never flake.

Plans cross the spawn boundary two ways: explicitly (``WorkStealingPool
(fault_plan=...)`` forwards the plan to its workers, the route tests
use) or via the ``$REPRO_FAULT_PLAN`` environment variable holding
``plan.to_json()`` (the route for chaos-testing a real deployment from
the outside — spawned children inherit the environment).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import FaultInjected, ServiceError

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
"""Environment variable holding a JSON-serialized fault plan."""

FAULT_ACTIONS = ("crash", "stall", "raise", "corrupt")
"""``crash``: ``os._exit(exit_code)`` — only meaningful in worker
processes.  ``stall``: sleep ``stall_s`` (hold the claim; the stall
detector's kill is the only way out).  ``raise``: raise
:class:`FaultInjected`.  ``corrupt``: no inline effect — the call site
receives the rule back and applies its own corruption (torn pipe frame,
flipped store byte)."""

FAULT_EXIT_CODE = 75
"""Default exit code for ``crash`` actions (EX_TEMPFAIL: transient)."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: where, what, and when it fires."""

    point: str
    action: str
    match: str = ""
    at: tuple[int, ...] = ()
    rate: float | None = None
    stall_s: float = 3600.0
    exit_code: int = FAULT_EXIT_CODE

    def __post_init__(self) -> None:
        if not self.point:
            raise ServiceError("FaultRule.point must be non-empty")
        if self.action not in FAULT_ACTIONS:
            raise ServiceError(
                f"FaultRule.action must be one of {FAULT_ACTIONS}, "
                f"got {self.action!r}"
            )
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ServiceError(
                f"FaultRule.rate must be in [0, 1], got {self.rate}"
            )
        if any(n < 1 for n in self.at):
            raise ServiceError("FaultRule.at counts are 1-based (>= 1)")

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": self.point,
            "action": self.action,
            "match": self.match,
            "at": list(self.at),
            "rate": self.rate,
            "stall_s": self.stall_s,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            point=data["point"],
            action=data["action"],
            match=data.get("match", ""),
            at=tuple(int(n) for n in data.get("at", ())),
            rate=data.get("rate"),
            stall_s=float(data.get("stall_s", 3600.0)),
            exit_code=int(data.get("exit_code", FAULT_EXIT_CODE)),
        )


def _seeded_decision(seed: int, point: str, context: str, rate: float) -> bool:
    """Pure function of (seed, point, context): same inputs, same fault,
    in every process, forever — a chaos seed that passes cannot flake."""
    digest = hashlib.sha256(
        f"{seed}|{point}|{context}".encode("utf-8")
    ).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return unit < rate


@dataclass
class FaultPlan:
    """A picklable set of fault rules plus per-process firing state."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    _hits: dict[tuple[int, str], int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _fired: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __init__(
        self, rules: Iterable[FaultRule] = (), seed: int = 0
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._hits = {}
        self._fired = {}
        self._lock = threading.Lock()

    # Counters are per-process state; a pickled copy starts fresh in the
    # spawned worker (hit counts must not leak across the boundary).
    def __getstate__(self) -> dict:
        return {"rules": self.rules, "seed": self.seed}

    def __setstate__(self, state: dict) -> None:
        self.__init__(rules=state["rules"], seed=state["seed"])

    # -- matching ------------------------------------------------------------
    def check(self, point: str, context: str = "") -> FaultRule | None:
        """The first rule firing at this (point, context) arrival, if
        any.  Counts the hit either way (rule ``at`` indices are counted
        per matching rule, under a lock — the verifier and collector
        threads share the parent-side plan)."""
        fired = None
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.point != point:
                    continue
                if rule.match and rule.match not in context:
                    continue
                count = self._hits.get((index, point), 0) + 1
                self._hits[(index, point)] = count
                if fired is not None:
                    continue  # keep sibling counters advancing
                if rule.rate is not None:
                    if _seeded_decision(self.seed, point, context, rule.rate):
                        fired = rule
                elif not rule.at or count in rule.at:
                    fired = rule
            if fired is not None:
                self._fired[point] = self._fired.get(point, 0) + 1
        return fired

    def fired(self, point: str | None = None) -> int:
        """How many faults fired (at ``point``, or in total) in this
        process — test introspection."""
        with self._lock:
            if point is not None:
                return self._fired.get(point, 0)
            return sum(self._fired.values())

    # -- serialization -------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse either the full ``{"seed": ..., "rules": [...]}`` form
        or a bare rule list (seed 0)."""
        try:
            data = json.loads(text)
            if isinstance(data, list):
                data = {"rules": data}
            rules = tuple(
                FaultRule.from_dict(entry) for entry in data.get("rules", ())
            )
            return cls(rules=rules, seed=int(data.get("seed", 0)))
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            raise ServiceError(f"bad fault plan JSON: {exc}") from exc

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Plan named by ``$REPRO_FAULT_PLAN``, or ``None`` if unset."""
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        return cls.from_json(text) if text else None


# -- process-global plan (the store/scheduler/journal hook) -------------------
_ACTIVE_PLAN: FaultPlan | None = None
_ENV_CHECKED = False


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` as this process's active plan (``None`` clears
    it, and suppresses the env fallback until re-installed).  Pool
    workers call this with the plan their pool forwarded; tests call it
    to arm parent-side points (store, verifier, journal)."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    _ACTIVE_PLAN = plan
    _ENV_CHECKED = True


def clear_fault_plan() -> None:
    """Remove any active plan and re-arm the env fallback (test
    teardown)."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    _ACTIVE_PLAN = None
    _ENV_CHECKED = False


def active_fault_plan() -> FaultPlan | None:
    """The installed plan, falling back to ``$REPRO_FAULT_PLAN`` once."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    if _ACTIVE_PLAN is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        _ACTIVE_PLAN = FaultPlan.from_env()
    return _ACTIVE_PLAN


def maybe_fault(point: str, context: str = "") -> FaultRule | None:
    """Fire any matching fault at a named injection point.

    ``crash`` / ``stall`` / ``raise`` actions execute inline (the crash
    via ``os._exit`` — no cleanup, exactly like the real fault it
    models).  A ``corrupt`` rule is *returned* so the call site can
    apply its own, site-specific corruption; ``None`` means no fault.
    With no plan installed this is one global read and a ``None`` check.
    """
    plan = active_fault_plan()
    if plan is None:
        return None
    rule = plan.check(point, context)
    if rule is None:
        return None
    if rule.action == "crash":
        os._exit(rule.exit_code)
    if rule.action == "stall":
        time.sleep(rule.stall_s)
        return None
    if rule.action == "raise":
        raise FaultInjected(
            f"injected fault at {point} (context {context!r})"
        )
    return rule  # "corrupt": the call site applies it


def corrupt_file(path: str, offset: int = -128) -> None:
    """Flip one byte of ``path`` in place (the ``corrupt`` helper for
    on-disk targets).  ``offset`` indexes from the end when negative;
    clamped into range, no-op on an empty file."""
    size = os.path.getsize(path)
    if size == 0:
        return
    position = offset if offset >= 0 else size + offset
    position = min(max(position, 0), size - 1)
    with open(path, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))
