"""Shape-binned cross-clip batching for the verification metrology.

Every optimized mask the service wants to re-measure is queued as a
:class:`VerifyItem`; :class:`ShapeBinScheduler` groups the queue by
``(raster grid shape, contour search range)`` and flushes each bin
through **one** :meth:`~repro.litho.simulator.LithographySimulator.
simulate_batch` call followed by **one**
:func:`~repro.metrology.epe.measure_epe_grouped` call.  Bins cross
request, clip, and engine boundaries — a mixed via+metal suite from four
engines collapses into a handful of batched litho calls — and because
batched results are bit-for-bit independent of the batch size, the
measurements are identical to re-simulating each mask alone.

``simulate_batch`` sweeps all three process corners from one shared
forward FFT, so "one call per bin" already covers every (grid-shape,
corner) combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.geometry.layout import Clip
from repro.geometry.raster import Grid, rasterize
from repro.geometry.segmentation import fragment_clip
from repro.litho.simulator import LithographySimulator
from repro.metrology.epe import measure_epe_grouped


def final_mask_image(outcome, grid: Grid) -> np.ndarray | None:
    """Rasterized final mask of an optimization outcome, if recoverable.

    Edge-based engines carry a ``final_state`` (a mask state rebuilt into
    polygons); pixel engines carry a ``mask_image`` directly.
    """
    state = getattr(outcome, "final_state", None)
    if state is not None:
        return rasterize(state.mask.mask_polygons(), grid)
    image = getattr(outcome, "mask_image", None)
    if image is not None:
        return np.asarray(image, dtype=np.float64)
    return None


@dataclass(frozen=True)
class VerifyItem:
    """One final mask queued for batched re-measurement."""

    key: Hashable
    clip: Clip
    grid: Grid
    mask: np.ndarray
    epe_search_nm: float


@dataclass
class ShapeBinScheduler:
    """Queue of verification work, flushed one batched call per bin."""

    _bins: dict[tuple, list[VerifyItem]] = field(default_factory=dict)
    batch_calls: int = 0
    items_flushed: int = 0

    def add(self, item: VerifyItem) -> None:
        bin_key = (item.grid.shape, float(item.epe_search_nm))
        self._bins.setdefault(bin_key, []).append(item)

    def add_outcome(
        self,
        key: Hashable,
        clip: Clip,
        outcome,
        simulator: LithographySimulator,
        epe_search_nm: float,
    ) -> bool:
        """Queue an optimization outcome; ``False`` if its final mask is
        not recoverable (nothing to verify)."""
        grid = simulator.grid_for(clip)
        mask = final_mask_image(outcome, grid)
        if mask is None:
            return False
        self.add(VerifyItem(
            key=key, clip=clip, grid=grid, mask=mask,
            epe_search_nm=epe_search_nm,
        ))
        return True

    @property
    def pending(self) -> int:
        return sum(len(members) for members in self._bins.values())

    @property
    def bin_count(self) -> int:
        return len(self._bins)

    def flush(self, simulator: LithographySimulator) -> dict[Hashable, float]:
        """Re-measure every queued mask: one ``simulate_batch`` plus one
        ``measure_epe_grouped`` per (shape, search-range) bin.

        Returns ``{item.key: epe_nm}`` and empties the queue.  Bins keep
        insertion order, so repeated flushes of the same queue issue the
        same calls in the same order.
        """
        measured: dict[Hashable, float] = {}
        threshold = simulator.config.threshold
        for (_, search_nm), members in self._bins.items():
            stack = np.stack([item.mask for item in members])
            results = simulator.simulate_batch(stack, members[0].grid)
            self.batch_calls += 1
            reports = measure_epe_grouped(
                np.stack([litho.aerial for litho in results]),
                [item.grid for item in members],
                [fragment_clip(item.clip) for item in members],
                threshold,
                search_nm=search_nm,
            )
            for item, report in zip(members, reports):
                measured[item.key] = report.total_abs
            self.items_flushed += len(members)
        self._bins.clear()
        return measured
