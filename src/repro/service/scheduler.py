"""Shape-binned cross-clip batching for the verification metrology.

Every optimized mask the service wants to re-measure is queued as a
:class:`VerifyItem`; :class:`ShapeBinScheduler` groups the queue by
``(raster grid shape, contour search range)`` and flushes each bin
through **one** :meth:`~repro.litho.simulator.LithographySimulator.
simulate_batch` call followed by **one**
:func:`~repro.metrology.epe.measure_epe_grouped` call.  Bins cross
request, clip, and engine boundaries — a mixed via+metal suite from four
engines collapses into a handful of batched litho calls — and because
batched results are bit-for-bit independent of the batch size, the
measurements are identical to re-simulating each mask alone.

``simulate_batch`` sweeps all three process corners from one shared
forward FFT, so "one call per bin" already covers every (grid-shape,
corner) combination.

Verification can also *stream*: :meth:`ShapeBinScheduler.flush_ready`
drains only the bins that have already accumulated ``min_bin`` masks, so
the process-sharded suite path (:mod:`repro.service.sharding`) verifies
full bins while workers are still optimizing and leaves stragglers for
the terminal :meth:`~ShapeBinScheduler.flush`.

The scheduler is thread-safe: the always-on daemon
(:mod:`repro.service.daemon`) adds outcomes and flushes from a dedicated
verifier thread while other threads read the counters for ``stats()``.
Queue mutations and counter updates happen under an internal lock; the
expensive litho/metrology calls run *outside* it, so a concurrent
``add`` never blocks behind a flush in progress.  A bin is popped from
the queue atomically before it is measured — two threads flushing
concurrently split the bins between them rather than measuring anything
twice.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.errors import ServiceError
from repro.geometry.layout import Clip
from repro.geometry.raster import Grid, rasterize
from repro.geometry.segmentation import fragment_clip
from repro.litho.simulator import LithographySimulator
from repro.metrology.epe import (
    measure_epe_grouped,
    measure_epe_grouped_sparse,
    measure_stencil_plan,
)
from repro.service.faults import maybe_fault

VERIFY_EVAL_MODES = ("sparse", "dense")


def final_mask_image(outcome, grid: Grid) -> np.ndarray | None:
    """Rasterized final mask of an optimization outcome, if recoverable.

    Edge-based engines carry a ``final_state`` (a mask state rebuilt into
    polygons); pixel engines carry a ``mask_image`` directly.
    """
    state = getattr(outcome, "final_state", None)
    if state is not None:
        return rasterize(state.mask.mask_polygons(), grid)
    image = getattr(outcome, "mask_image", None)
    if image is not None:
        return np.asarray(image, dtype=np.float64)
    return None


@dataclass(frozen=True)
class VerifyItem:
    """One final mask queued for batched re-measurement."""

    key: Hashable
    clip: Clip
    grid: Grid
    mask: np.ndarray
    epe_search_nm: float


@dataclass
class ShapeBinScheduler:
    """Queue of verification work, flushed one batched call per bin.

    ``verify_eval`` selects the bin evaluation engine:

    * ``"sparse"`` (default) — EPE verification is EPE-only, so each bin
      runs :meth:`~repro.litho.simulator.LithographySimulator.
      simulate_epe_batch`: intensity is evaluated solely at the pixels
      under each clip's measure-point stencils and no ``printed_image``
      (or full-grid inverse FFT) is ever built.  Measured values agree
      with the dense path to <= 1e-9 nm — far inside the service's 1e-6
      nm drift gate.
    * ``"dense"`` — the retained full pipeline (one ``simulate_batch`` +
      one ``measure_epe_grouped`` per bin), bit-for-bit identical to the
      pre-sparse verifier; required when callers also want PV band or
      printed images from the verification pass.
    """

    verify_eval: str = "sparse"
    _bins: dict[tuple, list[VerifyItem]] = field(default_factory=dict)
    batch_calls: int = 0
    items_flushed: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.verify_eval not in VERIFY_EVAL_MODES:
            raise ServiceError(
                f"unknown verify_eval {self.verify_eval!r}; choose one of "
                f"{VERIFY_EVAL_MODES}"
            )

    def add(self, item: VerifyItem) -> None:
        bin_key = (item.grid.shape, float(item.epe_search_nm))
        with self._lock:
            self._bins.setdefault(bin_key, []).append(item)

    def add_outcome(
        self,
        key: Hashable,
        clip: Clip,
        outcome,
        simulator: LithographySimulator,
        epe_search_nm: float,
    ) -> bool:
        """Queue an optimization outcome; ``False`` if its final mask is
        not recoverable (nothing to verify)."""
        grid = simulator.grid_for(clip)
        mask = final_mask_image(outcome, grid)
        if mask is None:
            return False
        self.add(VerifyItem(
            key=key, clip=clip, grid=grid, mask=mask,
            epe_search_nm=epe_search_nm,
        ))
        return True

    @property
    def pending(self) -> int:
        with self._lock:
            return sum(len(members) for members in self._bins.values())

    @property
    def bin_count(self) -> int:
        with self._lock:
            return len(self._bins)

    def counters(self) -> dict[str, int]:
        """Consistent snapshot of the flush counters (for ``stats()``
        readers racing the verifier thread)."""
        with self._lock:
            return {
                "batch_calls": self.batch_calls,
                "items_flushed": self.items_flushed,
                "pending": sum(len(m) for m in self._bins.values()),
                "bins": len(self._bins),
            }

    def flush(self, simulator: LithographySimulator) -> dict[Hashable, float]:
        """Re-measure every queued mask: one ``simulate_batch`` plus one
        ``measure_epe_grouped`` per (shape, search-range) bin.

        Returns ``{item.key: epe_nm}`` and empties the queue.  Bins keep
        insertion order, so repeated flushes of the same queue issue the
        same calls in the same order.
        """
        with self._lock:
            keys = list(self._bins)
        return self._flush_keys(simulator, keys)

    def flush_ready(
        self, simulator: LithographySimulator, min_bin: int = 1
    ) -> dict[Hashable, float]:
        """Flush only the bins holding at least ``min_bin`` masks.

        This is the streaming half of verification: while shard workers
        are still optimizing, the service drains any shape bin that has
        already filled up instead of waiting for the whole suite — see
        :meth:`repro.service.service.MaskOptService.run_suite_sharded`.
        Bins below the threshold stay queued for a later ``flush_ready``
        or the terminal :meth:`flush`.  Because batched measurements are
        bit-for-bit independent of the batch composition, *when* a mask
        is flushed never changes its measured value.
        """
        if min_bin < 1:
            raise ValueError(f"min_bin must be >= 1, got {min_bin}")
        with self._lock:
            ready = [
                key for key, members in self._bins.items()
                if len(members) >= min_bin
            ]
        return self._flush_keys(simulator, ready)

    def discard(self, keys) -> int:
        """Drop queued items whose ``key`` is in ``keys`` without
        measuring them (pruning emptied bins); returns the number
        removed.  Used by aborted sweeps to take back their outcomes so
        a caller that catches the error and reuses the service doesn't
        inherit stale masks in its next verification pass.
        """
        wanted = set(keys)
        removed = 0
        with self._lock:
            for bin_key in list(self._bins):
                members = self._bins[bin_key]
                kept = [item for item in members if item.key not in wanted]
                removed += len(members) - len(kept)
                if kept:
                    self._bins[bin_key] = kept
                else:
                    del self._bins[bin_key]
        return removed

    def _flush_keys(
        self, simulator: LithographySimulator, keys: list[tuple]
    ) -> dict[Hashable, float]:
        """Flush the named bins (one batched litho + metrology call each,
        in queue insertion order) and drop them from the queue.

        Each bin is popped atomically before it is measured, and the
        litho/metrology calls run outside the lock — concurrent adds
        never wait on a flush, and a bin that another thread already
        took is simply skipped.
        """
        measured: dict[Hashable, float] = {}
        threshold = simulator.config.threshold
        for key in keys:
            maybe_fault("verifier.flush", str(key))
            with self._lock:
                members = self._bins.pop(key, None)
            if not members:
                continue
            (_, search_nm) = key
            stack = np.stack([item.mask for item in members])
            if self.verify_eval == "sparse":
                # EPE-only evaluation: per-item stencil plans (cached by
                # clip geometry) drive the sparse band-spectrum gather;
                # clips without measure points plan to None and come
                # back as empty reports, matching the dense path.
                plans = [
                    measure_stencil_plan(
                        item.grid, fragment_clip(item.clip),
                        search_nm=search_nm,
                    )
                    for item in members
                ]
                sparse = simulator.simulate_epe_batch(
                    stack, members[0].grid, plans
                )
                reports = measure_epe_grouped_sparse(sparse, threshold)
            else:
                results = simulator.simulate_batch(stack, members[0].grid)
                reports = measure_epe_grouped(
                    np.stack([litho.aerial for litho in results]),
                    [item.grid for item in members],
                    [fragment_clip(item.clip) for item in members],
                    threshold,
                    search_nm=search_nm,
                )
            for item, report in zip(members, reports):
                measured[item.key] = report.total_abs
            with self._lock:
                self.batch_calls += 1
                self.items_flushed += len(members)
        return measured
