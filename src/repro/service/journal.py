"""Durable outcome journal: a write-ahead log that makes results survive
process death.

A killed daemon or sharded sweep used to forfeit everything in flight —
including clips that had already finished optimization *and* passed
verification.  :class:`OutcomeJournal` is the fix: an append-only,
CRC-framed log of request admissions and verified
:class:`~repro.service.api.OptResult`\\ s.  The serving paths append a
``result`` record the moment a clip's verification lands (fsync'd before
the append returns), so after a SIGKILL the journal holds exactly the
completed prefix; :func:`resume_suite` (``python -m repro resume``)
replays it, skips the recorded clips, re-dispatches only the unfinished
ones, and merges — bit-for-bit identical to an uninterrupted run,
because every engine is deterministic from its spec.

File format
-----------

An 8-byte magic header (:data:`JOURNAL_MAGIC`), then zero or more
records, each framed as::

    u32 LE payload length | u32 LE CRC-32 of payload | payload (JSON, utf-8)

Appends are atomic-in-effect: the frame is written in one ``write`` call
and fsync'd.  A crash mid-append leaves a *torn tail* — short frame, bad
CRC, or unparseable JSON — which :meth:`OutcomeJournal.open` detects and
truncates (by design that is recovery, not an error; only a bad magic
header raises :class:`~repro.errors.JournalError`, because that means
the path is not a journal at all).

Every record carries the :meth:`~repro.service.sharding.EngineSpec.
fingerprint` of the spec that produced it.  Resume refuses a journal
whose records were computed under a different fingerprint — merging
results from a different engine, override set, litho config, or seed
would silently mix incompatible numbers.

Record types::

    {"type": "meta",   "version": 1}
    {"type": "admit",  "ticket": 7, "clip": "via_03", "engine": "mbopc",
     "fp": "1f3a..."}
    {"type": "result", "ticket": 7, "clip": "via_03", "engine": "mbopc",
     "fp": "1f3a...", "result": {...OptResult.to_dict()...}}
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Any, Mapping

from repro.errors import JournalError
from repro.geometry.layout import Clip
from repro.service.api import OptResult
from repro.service.faults import maybe_fault

JOURNAL_MAGIC = b"RJRNL001"
"""First 8 bytes of every journal file."""

JOURNAL_VERSION = 1

_FRAME = struct.Struct("<II")  # payload length, CRC-32 of payload


class OutcomeJournal:
    """Append-only, CRC-framed, fsync'd log of admissions and results.

    Thread-safe: the daemon's resolver thread and a sweep's consumer
    loop may append concurrently.  ``open()`` scans existing records
    (truncating a torn tail) so the same object serves both replay and
    append — resume opens the journal once and keeps writing to it.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._handle = None
        self._records: list[dict] = []
        self._truncated_bytes = 0
        self._open()

    # -- lifecycle -----------------------------------------------------------
    def _open(self) -> None:
        fresh = not os.path.exists(self.path) or \
            os.path.getsize(self.path) == 0
        # "a+b" would always append; we need to truncate torn tails, so
        # open r+b (creating first when missing) and seek ourselves.
        if fresh:
            with open(self.path, "wb") as handle:
                handle.write(JOURNAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
        self._handle = open(self.path, "r+b")
        try:
            magic = self._handle.read(len(JOURNAL_MAGIC))
            if magic != JOURNAL_MAGIC:
                raise JournalError(
                    f"{self.path!r} is not an outcome journal "
                    f"(bad magic {magic!r})"
                )
            good_end = self._scan()
        except BaseException:
            self._handle.close()
            self._handle = None
            raise
        size = os.path.getsize(self.path)
        if good_end < size:
            # Torn tail from a crash mid-append: recover by truncation.
            self._truncated_bytes = size - good_end
            self._handle.truncate(good_end)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._handle.seek(good_end)
        if fresh:
            self.append({"type": "meta", "version": JOURNAL_VERSION})

    def _scan(self) -> int:
        """Parse records from the open handle; returns the offset just
        past the last *intact* record."""
        good_end = self._handle.tell()
        while True:
            header = self._handle.read(_FRAME.size)
            if len(header) < _FRAME.size:
                return good_end
            length, crc = _FRAME.unpack(header)
            payload = self._handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return good_end
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                return good_end
            if not isinstance(record, dict):
                return good_end
            self._records.append(record)
            good_end = self._handle.tell()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "OutcomeJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- append --------------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> None:
        """Frame, write, and fsync one record; durable on return."""
        maybe_fault("journal.append", str(record.get("type", "")))
        payload = json.dumps(dict(record), sort_keys=True).encode("utf-8")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            if self._handle is None:
                raise JournalError(
                    f"journal {self.path!r} is closed; cannot append"
                )
            self._handle.write(frame)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._records.append(dict(record))

    def log_admit(
        self, ticket: int, clip: Clip | str, engine: str, fingerprint: str,
    ) -> None:
        self.append({
            "type": "admit",
            "ticket": int(ticket),
            "clip": clip if isinstance(clip, str) else clip.name,
            "engine": engine,
            "fp": fingerprint,
        })

    def log_result(
        self, ticket: int, result: OptResult, fingerprint: str,
    ) -> None:
        self.append({
            "type": "result",
            "ticket": int(ticket),
            "clip": result.clip_name,
            "engine": result.engine,
            "fp": fingerprint,
            "result": result.to_dict(),
        })

    # -- replay --------------------------------------------------------------
    @property
    def records(self) -> tuple[dict, ...]:
        with self._lock:
            return tuple(self._records)

    @property
    def truncated_bytes(self) -> int:
        """Bytes of torn tail dropped when this journal was opened."""
        return self._truncated_bytes

    def fingerprints(self) -> tuple[str, ...]:
        """Every engine fingerprint stamped on a record, in first-seen
        order."""
        seen: dict[str, None] = {}
        for record in self.records:
            fp = record.get("fp")
            if fp:
                seen.setdefault(fp, None)
        return tuple(seen)

    def results_for(self, fingerprint: str) -> dict[str, dict]:
        """``{clip name: OptResult.to_dict()}`` of every completed clip
        recorded under ``fingerprint`` (last record wins)."""
        out: dict[str, dict] = {}
        for record in self.records:
            if (
                record.get("type") == "result"
                and record.get("fp") == fingerprint
                and isinstance(record.get("result"), dict)
            ):
                out[str(record.get("clip"))] = record["result"]
        return out

    def stats(self) -> dict[str, Any]:
        records = self.records
        return {
            "path": self.path,
            "records": len(records),
            "admitted": sum(
                1 for r in records if r.get("type") == "admit"
            ),
            "results": sum(
                1 for r in records if r.get("type") == "result"
            ),
            "truncated_bytes": self._truncated_bytes,
        }


def open_journal(journal: "OutcomeJournal | str | os.PathLike | None") \
        -> tuple[OutcomeJournal | None, bool]:
    """Normalize a ``journal=`` argument: pass instances through, open
    paths.  Returns ``(journal, owned)`` — ``owned`` says the caller
    opened it here and should close it when done."""
    if journal is None:
        return None, False
    if isinstance(journal, OutcomeJournal):
        return journal, False
    return OutcomeJournal(os.fspath(journal)), True


def resume_suite(
    service,
    engine: Any,
    clips,
    journal: "OutcomeJournal | str | os.PathLike",
    workers: int = 1,
    engine_overrides: Mapping[str, Any] | None = None,
    verify: bool = True,
    **run_kwargs,
) -> tuple[list[OptResult], int]:
    """Finish an interrupted suite from its journal.

    Builds the same :class:`~repro.service.sharding.EngineSpec` the
    original sweep would, replays the journal's completed clips under
    that spec's fingerprint, and re-dispatches only the remainder via
    ``service.run_suite_sharded(..., journal=...)`` (so the resumed run
    keeps journaling — resumable resumes).  Returns ``(results,
    replayed)``: one result per clip in suite order, and how many came
    from the journal instead of being recomputed.  Deterministic engines
    make the merge bit-for-bit identical to an uninterrupted run.

    Raises :class:`~repro.errors.JournalError` if the journal's records
    were computed under a different fingerprint — results from another
    engine, override set, litho config, or seed must never be merged.
    """
    from repro.service.sharding import EngineSpec

    clip_list = list(clips)
    if not clip_list:
        raise JournalError("resume needs at least one clip")
    spec = EngineSpec(
        engine=engine,
        litho=service.simulator.config,
        overrides=tuple(sorted((engine_overrides or {}).items())),
    )
    fingerprint = spec.fingerprint()
    opened, owned = open_journal(journal)
    try:
        recorded_fps = opened.fingerprints()
        if recorded_fps and fingerprint not in recorded_fps:
            raise JournalError(
                f"journal {opened.path!r} was written under engine "
                f"fingerprint(s) {', '.join(recorded_fps)} but the "
                f"requested spec ({spec.label}) fingerprints as "
                f"{fingerprint}; refusing to merge results from a "
                "different engine/overrides/litho-config/seed"
            )
        recorded = opened.results_for(fingerprint)
        remaining = [
            clip for clip in clip_list if clip.name not in recorded
        ]
        fresh: dict[str, OptResult] = {}
        if remaining:
            for result in service.run_suite_sharded(
                engine, remaining, workers=workers,
                engine_overrides=engine_overrides, verify=verify,
                journal=opened, **run_kwargs,
            ):
                fresh[result.clip_name] = result
        results = []
        replayed = 0
        for clip in clip_list:
            if clip.name in fresh:
                results.append(fresh[clip.name])
            else:
                results.append(OptResult.from_dict(recorded[clip.name]))
                replayed += 1
        return results, replayed
    finally:
        if owned:
            opened.close()
