"""Process-sharded suite execution over the work-stealing pool.

:class:`~repro.service.service.MaskOptService.map_suite` thread-pools
*across* engines, but one engine's sweep over a benchmark suite is still
a single-core sequential loop — the litho FFTs release the GIL under the
scipy backend, yet the surrounding python (policy forwards, geometry,
metrology) serializes.  :class:`ShardedSuiteRunner` breaks that limit by
fanning one engine's clip list out to N worker *processes* pulling from
a shared :class:`~repro.service.workqueue.WorkStealingPool` queue:

* **Spawn-safe by construction.**  Workers are started with the
  ``spawn`` method (the only start method that is safe everywhere and
  identical across platforms), so nothing inherited matters: each worker
  rebuilds its engine from a picklable :class:`EngineSpec` — litho
  config + registry name (or factory callable) + overrides + seed —
  never from a forked copy of live state.
* **Shared warmup, not shared memory.**  The spec's
  :class:`~repro.litho.simulator.LithoConfig` carries ``spectra_store=``
  (the CLI wires ``$REPRO_SPECTRA_STORE`` into it), so all workers read
  and atomically write one on-disk kernel-spectra store: the first
  worker to meet a grid shape persists its band spectra and every other
  worker's build becomes one ``.npz`` read (:mod:`repro.litho.store`).
* **Work-stealing dispatch.**  Clips sit on one shared task queue and
  each worker pulls its next clip the moment it finishes the previous
  one, so heterogeneous suites (mixed grid sizes, early-exiting clips)
  load-balance themselves instead of leaving one round-robin shard with
  the expensive tail (``dispatch="static"`` retains the PR 5 deal as
  the benchmark baseline).
* **Streaming results.**  Each finished clip is flattened into a
  picklable :class:`OptOutcome` (reported numbers + the rasterized final
  mask) and put on a queue *immediately*, so the parent can verify full
  shape bins while workers are still optimizing
  (:meth:`~repro.service.scheduler.ShapeBinScheduler.flush_ready`).
* **Numbers never change.**  Sharding reorders *work*, not computation:
  each ``optimize(clip)`` runs against a freshly built engine/simulator
  pair that is bit-for-bit deterministic from the spec, and the mask is
  rasterized on the same per-clip grid the parent would use — so *which*
  worker runs a clip is irrelevant and work stealing preserves the
  bit-for-bit pin (``tests/test_service_sharding.py``).  (This requires
  engines whose ``optimize`` is per-clip deterministic and stateless
  across calls — true of every registry engine.)
* **Crashes fail loudly.**  A worker that dies mid-suite (OOM kill,
  segfault, ``os._exit``) is detected by the pool's liveness poll and
  surfaces as a :class:`~repro.errors.ServiceError` naming the claimed
  clip; the queue can never hang and sibling workers are torn down.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import DeadlineExceeded, RetriesExhausted, ServiceError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service.registry import (
    build_engine,
    engine_epe_search_nm,
    overrides_key,
    spec_label,
)
from repro.service.scheduler import final_mask_image
from repro.service.workqueue import (
    CRASH_GRACE_S,
    DEFAULT_START_METHOD,
    POLL_INTERVAL_S,
    RETRY_BACKOFF_S,
    DeadWorker,
    Task,
    WorkStealingPool,
)

FINGERPRINT_EXCLUDED_LITHO_FIELDS = (
    "backend", "device", "fft_backend", "fft_workers", "spectra_store",
)
"""Deployment knobs that change *where/how fast* the numbers are
computed, never the numbers themselves (to far inside every acceptance
tolerance) — two specs differing only here produce equivalent results
and must share a fingerprint, so a journal written on a numpy host
resumes on a scipy-threaded or torch-device one and vice versa."""


@dataclass(frozen=True)
class OptOutcome:
    """Engine-agnostic, picklable outcome of one ``optimize(clip)`` call.

    This is the payload shard workers stream back over the result queue:
    the engine's reported numbers, the contour search range its own
    metrology used (so the parent can bin verification without the
    engine object), and the final mask rasterized on the clip's grid
    (``final_mask_image`` recovers it, exactly as it would from the raw
    outcome).  It quacks like the raw outcome everywhere the service
    needs one — ``epe_total``, ``pvband``, ``runtime_s``, ``steps``,
    ``early_exited``, ``mask_image``.
    """

    clip_name: str
    epe_total: float
    pvband: float
    runtime_s: float
    steps: int
    early_exited: bool
    epe_search_nm: float
    mask_image: np.ndarray | None = field(repr=False, default=None)
    epe_curve: tuple[float, ...] = ()
    worker: int = 0

    @classmethod
    def from_raw(
        cls, raw, clip: Clip, simulator: LithographySimulator,
        epe_search_nm: float, worker: int = 0, capture_mask: bool = True,
    ) -> "OptOutcome":
        """Flatten any engine's outcome object for the wire.

        ``capture_mask=False`` skips the rasterization and ships no mask
        — the right call when the parent runs with verification off and
        would only discard the (multi-MB at large grids) array.
        """
        return cls(
            clip_name=clip.name,
            epe_total=float(raw.epe_total),
            pvband=float(raw.pvband),
            runtime_s=float(raw.runtime_s),
            steps=int(raw.steps),
            early_exited=bool(raw.early_exited),
            epe_search_nm=float(epe_search_nm),
            mask_image=(
                final_mask_image(raw, simulator.grid_for(clip))
                if capture_mask else None
            ),
            epe_curve=tuple(
                float(v) for v in getattr(raw, "epe_curve", ()) or ()
            ),
            worker=worker,
        )


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to rebuild its engine, picklably.

    ``engine`` is a registry name or a factory callable
    ``(simulator, overrides) -> engine`` (picklable by qualified name —
    a module-level function, not a lambda or a bound method); engine
    *instances* are rejected here, eagerly, instead of dying later
    inside ``Process.start`` with an opaque pickling error.  ``seed``,
    when set, seeds numpy's global RNG before the build+sweep, exactly
    once per worker — in each spawned worker, and on the inline
    ``workers=1`` path under a save/restore so the caller's process-wide
    RNG state is left untouched.  (Engines that draw from the global RNG
    *during* ``optimize`` still see different streams at different
    worker counts — per-clip determinism, which all registry engines
    have via config-seeded private RNGs, is what the bit-for-bit
    contract rests on.)
    """

    engine: str | Callable
    litho: LithoConfig
    overrides: tuple[tuple[str, Any], ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str) and not callable(self.engine):
            raise ServiceError(
                "EngineSpec.engine must be a registry name or a factory "
                f"callable, got a {type(self.engine).__name__} instance; "
                "engines cannot cross a process boundary — pass the spec "
                "that builds them"
            )
        if not isinstance(self.litho, LithoConfig):
            raise ServiceError(
                f"EngineSpec.litho must be a LithoConfig, got "
                f"{type(self.litho).__name__}"
            )

    @property
    def label(self) -> str:
        return spec_label(self.engine)

    def fingerprint(self) -> str:
        """Stable 16-hex-digit identity of the *numbers* this spec
        produces: engine label + overrides + litho physics + seed.

        This is the key the outcome journal stamps on every record, so
        ``resume`` can refuse to merge results computed under a different
        spec.  Deployment knobs that cannot change a result
        (:data:`FINGERPRINT_EXCLUDED_LITHO_FIELDS`) are excluded —
        moving a journal between hosts with different FFT backends or
        store paths must not orphan it.
        """
        parts = [f"engine={self.label}", f"seed={self.seed!r}"]
        parts.extend(
            f"opt.{name}={value!r}" for name, value in
            overrides_key(dict(self.overrides))
        )
        parts.extend(
            f"litho.{field_.name}={getattr(self.litho, field_.name)!r}"
            for field_ in dataclasses.fields(self.litho)
            if field_.name not in FINGERPRINT_EXCLUDED_LITHO_FIELDS
        )
        digest = hashlib.sha256("|".join(parts).encode("utf-8"))
        return digest.hexdigest()[:16]

    def build(self) -> tuple[Any, LithographySimulator]:
        """Construct the (engine, simulator) pair this spec describes
        (pure: seeding, when requested, is applied by the worker entry
        point, not here)."""
        simulator = LithographySimulator(self.litho)
        return build_engine(self.engine, simulator, dict(self.overrides)), \
            simulator


class ShardedSuiteRunner:
    """Fan one engine's clip sweep out to N worker processes.

    With the default ``dispatch="steal"`` every worker pulls its next
    clip from one shared queue the moment it frees up, so load balances
    even when clip costs are skewed; ``dispatch="static"`` retains the
    PR 5 round-robin deal (worker ``w`` takes ``clips[w::N]``) as a
    pinned-placement baseline.  :meth:`run` streams every finished clip
    through the ``on_outcome`` callback as it arrives (arrival order is
    nondeterministic) and returns the full outcome list in suite order
    (which is not) — either dispatch mode yields bit-for-bit identical
    outcomes, because *which* worker runs a clip never enters the
    computation.
    """

    def __init__(
        self,
        spec: EngineSpec,
        workers: int,
        start_method: str = DEFAULT_START_METHOD,
        dispatch: str = "steal",
        retries: int = 0,
        deadline_s: float | None = None,
        stall_timeout_s: float | None = None,
        grace_s: float = CRASH_GRACE_S,
        retry_backoff_s: float = RETRY_BACKOFF_S,
        fault_plan=None,
        max_revives: int | None = None,
    ) -> None:
        if not isinstance(spec, EngineSpec):
            raise ServiceError(
                f"ShardedSuiteRunner needs an EngineSpec, got "
                f"{type(spec).__name__}"
            )
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if deadline_s is not None and deadline_s <= 0:
            raise ServiceError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        self.spec = spec
        self.workers = int(workers)
        self.start_method = start_method
        self.dispatch = dispatch
        self.retries = int(retries)
        self.deadline_s = deadline_s
        self.stall_timeout_s = stall_timeout_s
        self.grace_s = float(grace_s)
        self.retry_backoff_s = float(retry_backoff_s)
        self.fault_plan = fault_plan
        self.max_revives = (
            3 * self.workers if max_revives is None else int(max_revives)
        )
        self.last_pool_stats: dict[str, Any] | None = None

    # -- in-process fallback -------------------------------------------------
    def _run_inline(
        self,
        clips: list[Clip],
        optimize_kwargs: dict,
        on_outcome,
        capture_masks: bool,
    ) -> list[OptOutcome]:
        """workers=1: same spec-built engine and payloads, no processes
        (also the zero-overhead baseline the shard benchmark times).
        ``spec.seed`` is honored exactly as a single spawned worker
        would honor it, but under save/restore — reseeding numpy's
        global RNG in the caller's process as a lasting side effect
        would corrupt unrelated code."""
        saved_rng_state = None
        if self.spec.seed is not None:
            saved_rng_state = np.random.get_state()
            np.random.seed(self.spec.seed)
        try:
            engine, simulator = self.spec.build()
            search_nm = engine_epe_search_nm(engine)
            outcomes = []
            for index, clip in enumerate(clips):
                payload = OptOutcome.from_raw(
                    engine.optimize(clip, **optimize_kwargs),
                    clip, simulator, search_nm, worker=0,
                    capture_mask=capture_masks,
                )
                outcomes.append(payload)
                if on_outcome is not None:
                    on_outcome(index, payload)
            return outcomes
        finally:
            if saved_rng_state is not None:
                np.random.set_state(saved_rng_state)

    # -- the sharded path ----------------------------------------------------
    def run(
        self,
        clips: Sequence[Clip],
        optimize_kwargs: dict | None = None,
        on_outcome: Callable[[int, OptOutcome], None] | None = None,
        capture_masks: bool = True,
    ) -> list[OptOutcome]:
        """Sweep ``clips``; returns outcomes in clip order.

        ``on_outcome(index, outcome)`` fires in the parent as each clip
        finishes — this is where the service hooks streaming
        verification.  ``capture_masks=False`` tells workers not to
        rasterize/ship final masks (for verification-free sweeps the
        parent would discard them).  Raises :class:`ServiceError` if any
        worker raises or dies; sibling workers are terminated before the
        raise, so the caller never inherits a half-alive fleet.
        """
        clip_list = list(clips)
        if not clip_list:
            raise ServiceError("sharded run needs at least one clip")
        kwargs = dict(optimize_kwargs or {})
        workers = min(self.workers, len(clip_list))
        if workers == 1:
            return self._run_inline(
                clip_list, kwargs, on_outcome, capture_masks
            )

        # The pool's relay thread owns all pipe reads: a worker
        # SIGKILLed mid-payload-write (torn queue frame) can only wedge
        # that abandonable daemon thread, while this loop polls the
        # in-process relay with real timeouts and still reaches the
        # liveness check — the sweep fails with ServiceError instead of
        # hanging.
        pool = WorkStealingPool(
            self.spec, workers, start_method=self.start_method,
            dispatch=self.dispatch, grace_s=self.grace_s,
            fault_plan=self.fault_plan,
            stall_timeout_s=self.stall_timeout_s,
            retry_backoff_s=self.retry_backoff_s,
        )
        outcomes: list[OptOutcome | None] = [None] * len(clip_list)
        revives_used = 0
        try:
            pool.start()
            for index, clip in enumerate(clip_list):
                pool.submit(
                    Task(
                        task_id=index, clip=clip, optimize_kwargs=kwargs,
                        capture_mask=capture_masks,
                        retries=self.retries, deadline_s=self.deadline_s,
                    ),
                    worker=(
                        index % workers if self.dispatch == "static" else None
                    ),
                )
            pending = len(clip_list)
            while pending > 0:
                message = pool.get_message(timeout=POLL_INTERVAL_S)
                if message is None:
                    revives_used = self._handle_deaths(pool, revives_used)
                else:
                    fresh = pool.observe(message)
                    kind, wid, task_id, payload = message
                    if not fresh:
                        pass  # late sibling of a retried/deadlined task
                    elif kind == "ok":
                        outcomes[task_id] = payload
                        pending -= 1
                        if on_outcome is not None:
                            on_outcome(task_id, payload)
                    elif kind == "error":
                        # Engine exceptions are deterministic — a retry
                        # would fail identically, so surface immediately.
                        clip = clip_list[task_id]
                        raise ServiceError(
                            f"shard worker {wid} failed optimizing clip "
                            f"{clip.name!r} ({self.spec.label}): {payload}"
                        )
                    elif kind == "fatal":
                        raise ServiceError(
                            f"shard worker {wid} could not build engine "
                            f"{self.spec.label!r}: {payload}"
                        )
                    elif kind == "corrupt":
                        raise ServiceError(
                            f"shard result stream corrupted "
                            f"({self.spec.label}): {payload}"
                        )
                    # "ready" / "exit" are liveness bookkeeping, already
                    # folded in by pool.observe.
                for event in pool.pump():
                    if event.kind == "deadline":
                        raise DeadlineExceeded(
                            f"clip {event.task.clip.name!r} "
                            f"({self.spec.label}) missed its "
                            f"{event.task.deadline_s}s deadline; "
                            "sweep aborted"
                        )
        except BaseException:
            self.last_pool_stats = pool.stats()
            pool.shutdown(graceful=False)
            raise
        self.last_pool_stats = pool.stats()
        pool.shutdown(graceful=True)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _handle_deaths(
        self, pool: WorkStealingPool, revives_used: int
    ) -> int:
        """Fold dead-worker verdicts into the sweep: revive workers whose
        task was requeued (or who died idle — e.g. crashed *after* their
        result landed), fail the sweep when a task is out of retries or
        the revive budget is spent."""
        for dead in pool.check_dead():
            if dead.task is not None and not dead.requeued:
                if dead.task.retries > 0:
                    raise RetriesExhausted(
                        f"shard worker {dead.worker_id} ({self.spec.label}) "
                        f"died with exit code {dead.exitcode} while "
                        f"optimizing clip {dead.task.clip.name!r}; retries "
                        f"exhausted after {dead.task.attempt + 1} attempts; "
                        "sweep aborted"
                    )
                raise self._death_error(dead)
            if revives_used >= self.max_revives:
                raise ServiceError(
                    f"shard pool ({self.spec.label}) lost its workers "
                    f"repeatedly ({revives_used} revivals); worker "
                    f"{dead.worker_id} died with exit code "
                    f"{dead.exitcode}; sweep aborted"
                )
            pool.revive(dead.worker_id)
            revives_used += 1
        return revives_used

    def _death_error(self, dead: DeadWorker) -> ServiceError:
        """A worker died without a clean ``exit`` message."""
        where = (
            f"while optimizing clip {dead.task.clip.name!r}"
            if dead.task is not None
            else "with no claimed clip (between tasks)"
        )
        return ServiceError(
            f"shard worker {dead.worker_id} ({self.spec.label}) died with "
            f"exit code {dead.exitcode} {where}; sweep aborted"
        )
