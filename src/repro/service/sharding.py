"""Process-sharded suite execution: per-clip worker processes.

:class:`~repro.service.service.MaskOptService.map_suite` thread-pools
*across* engines, but one engine's sweep over a benchmark suite is still
a single-core sequential loop — the litho FFTs release the GIL under the
scipy backend, yet the surrounding python (policy forwards, geometry,
metrology) serializes.  :class:`ShardedSuiteRunner` breaks that limit by
partitioning one engine's clip list across N worker *processes*:

* **Spawn-safe by construction.**  Workers are started with the
  ``spawn`` method (the only start method that is safe everywhere and
  identical across platforms), so nothing inherited matters: each worker
  rebuilds its engine from a picklable :class:`EngineSpec` — litho
  config + registry name (or factory callable) + overrides + seed —
  never from a forked copy of live state.
* **Shared warmup, not shared memory.**  The spec's
  :class:`~repro.litho.simulator.LithoConfig` carries ``spectra_store=``
  (the CLI wires ``$REPRO_SPECTRA_STORE`` into it), so all workers read
  and atomically write one on-disk kernel-spectra store: the first
  worker to meet a grid shape persists its band spectra and every other
  worker's build becomes one ``.npz`` read (:mod:`repro.litho.store`).
* **Streaming results.**  Each finished clip is flattened into a
  picklable :class:`OptOutcome` (reported numbers + the rasterized final
  mask) and put on a queue *immediately*, so the parent can verify full
  shape bins while workers are still optimizing
  (:meth:`~repro.service.scheduler.ShapeBinScheduler.flush_ready`).
* **Numbers never change.**  Sharding reorders *work*, not computation:
  each ``optimize(clip)`` runs against a freshly built engine/simulator
  pair that is bit-for-bit deterministic from the spec, and the mask is
  rasterized on the same per-clip grid the parent would use.  A sharded
  sweep is pinned identical to the sequential one in
  ``tests/test_service_sharding.py``.  (This requires engines whose
  ``optimize`` is per-clip deterministic and stateless across calls —
  true of every registry engine.)
* **Crashes fail loudly.**  A worker that dies mid-suite (OOM kill,
  segfault, ``os._exit``) is detected by the parent's liveness poll and
  surfaces as a :class:`~repro.errors.ServiceError` naming the clip that
  was in flight; the queue can never hang and sibling workers are torn
  down.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ServiceError
from repro.geometry.layout import Clip
from repro.litho.simulator import LithoConfig, LithographySimulator
from repro.service.registry import (
    build_engine,
    engine_epe_search_nm,
    spec_label,
)
from repro.service.scheduler import final_mask_image

DEFAULT_START_METHOD = "spawn"

_POLL_INTERVAL_S = 0.05
_CRASH_GRACE_S = 1.0
"""A dead worker's last messages may still be in the pipe; wait this
long after observing its exit before declaring the queue dry and the
worker crashed."""


@dataclass(frozen=True)
class OptOutcome:
    """Engine-agnostic, picklable outcome of one ``optimize(clip)`` call.

    This is the payload shard workers stream back over the result queue:
    the engine's reported numbers, the contour search range its own
    metrology used (so the parent can bin verification without the
    engine object), and the final mask rasterized on the clip's grid
    (``final_mask_image`` recovers it, exactly as it would from the raw
    outcome).  It quacks like the raw outcome everywhere the service
    needs one — ``epe_total``, ``pvband``, ``runtime_s``, ``steps``,
    ``early_exited``, ``mask_image``.
    """

    clip_name: str
    epe_total: float
    pvband: float
    runtime_s: float
    steps: int
    early_exited: bool
    epe_search_nm: float
    mask_image: np.ndarray | None = field(repr=False, default=None)
    epe_curve: tuple[float, ...] = ()
    worker: int = 0

    @classmethod
    def from_raw(
        cls, raw, clip: Clip, simulator: LithographySimulator,
        epe_search_nm: float, worker: int = 0, capture_mask: bool = True,
    ) -> "OptOutcome":
        """Flatten any engine's outcome object for the wire.

        ``capture_mask=False`` skips the rasterization and ships no mask
        — the right call when the parent runs with verification off and
        would only discard the (multi-MB at large grids) array.
        """
        return cls(
            clip_name=clip.name,
            epe_total=float(raw.epe_total),
            pvband=float(raw.pvband),
            runtime_s=float(raw.runtime_s),
            steps=int(raw.steps),
            early_exited=bool(raw.early_exited),
            epe_search_nm=float(epe_search_nm),
            mask_image=(
                final_mask_image(raw, simulator.grid_for(clip))
                if capture_mask else None
            ),
            epe_curve=tuple(
                float(v) for v in getattr(raw, "epe_curve", ()) or ()
            ),
            worker=worker,
        )


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to rebuild its engine, picklably.

    ``engine`` is a registry name or a factory callable
    ``(simulator, overrides) -> engine`` (picklable by qualified name —
    a module-level function, not a lambda or a bound method); engine
    *instances* are rejected here, eagerly, instead of dying later
    inside ``Process.start`` with an opaque pickling error.  ``seed``,
    when set, seeds numpy's global RNG before the build+sweep, exactly
    once per worker — in each spawned worker, and on the inline
    ``workers=1`` path under a save/restore so the caller's process-wide
    RNG state is left untouched.  (Engines that draw from the global RNG
    *during* ``optimize`` still see different streams at different
    worker counts — per-clip determinism, which all registry engines
    have via config-seeded private RNGs, is what the bit-for-bit
    contract rests on.)
    """

    engine: str | Callable
    litho: LithoConfig
    overrides: tuple[tuple[str, Any], ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str) and not callable(self.engine):
            raise ServiceError(
                "EngineSpec.engine must be a registry name or a factory "
                f"callable, got a {type(self.engine).__name__} instance; "
                "engines cannot cross a process boundary — pass the spec "
                "that builds them"
            )
        if not isinstance(self.litho, LithoConfig):
            raise ServiceError(
                f"EngineSpec.litho must be a LithoConfig, got "
                f"{type(self.litho).__name__}"
            )

    @property
    def label(self) -> str:
        return spec_label(self.engine)

    def build(self) -> tuple[Any, LithographySimulator]:
        """Construct the (engine, simulator) pair this spec describes
        (pure: seeding, when requested, is applied by the worker entry
        point, not here)."""
        simulator = LithographySimulator(self.litho)
        return build_engine(self.engine, simulator, dict(self.overrides)), \
            simulator


def _describe_error(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


def _shard_worker(
    worker_id: int,
    spec: EngineSpec,
    assignment: list[tuple[int, Clip]],
    optimize_kwargs: dict,
    capture_masks: bool,
    out_queue,
) -> None:
    """Worker entry point: build the engine, stream one OptOutcome per
    assigned clip, then announce a clean exit.

    Runs in a spawned child process; every message is a 4-tuple
    ``(kind, worker_id, clip_index, payload)`` with kind one of
    ``"ok"`` / ``"error"`` / ``"fatal"`` / ``"exit"``.
    """
    try:
        if spec.seed is not None:
            np.random.seed(spec.seed)
        engine, simulator = spec.build()
        search_nm = engine_epe_search_nm(engine)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        out_queue.put(("fatal", worker_id, None, _describe_error(exc)))
        return
    for index, clip in assignment:
        try:
            raw = engine.optimize(clip, **optimize_kwargs)
            payload = OptOutcome.from_raw(
                raw, clip, simulator, search_nm, worker=worker_id,
                capture_mask=capture_masks,
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
            out_queue.put(("error", worker_id, index, _describe_error(exc)))
            return
        out_queue.put(("ok", worker_id, index, payload))
    out_queue.put(("exit", worker_id, None, None))


class ShardedSuiteRunner:
    """Partition one engine's clip sweep across N worker processes.

    Clips are dealt round-robin (worker ``w`` takes ``clips[w::N]``) so
    clip order within each worker matches suite order and load stays
    even for homogeneous suites.  :meth:`run` streams every finished
    clip through the ``on_outcome`` callback as it arrives (arrival
    order is nondeterministic) and returns the full outcome list in
    suite order (which is not).
    """

    def __init__(
        self,
        spec: EngineSpec,
        workers: int,
        start_method: str = DEFAULT_START_METHOD,
    ) -> None:
        if not isinstance(spec, EngineSpec):
            raise ServiceError(
                f"ShardedSuiteRunner needs an EngineSpec, got "
                f"{type(spec).__name__}"
            )
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = int(workers)
        self.start_method = start_method

    # -- in-process fallback -------------------------------------------------
    def _run_inline(
        self,
        clips: list[Clip],
        optimize_kwargs: dict,
        on_outcome,
        capture_masks: bool,
    ) -> list[OptOutcome]:
        """workers=1: same spec-built engine and payloads, no processes
        (also the zero-overhead baseline the shard benchmark times).
        ``spec.seed`` is honored exactly as a single spawned worker
        would honor it, but under save/restore — reseeding numpy's
        global RNG in the caller's process as a lasting side effect
        would corrupt unrelated code."""
        saved_rng_state = None
        if self.spec.seed is not None:
            saved_rng_state = np.random.get_state()
            np.random.seed(self.spec.seed)
        try:
            engine, simulator = self.spec.build()
            search_nm = engine_epe_search_nm(engine)
            outcomes = []
            for index, clip in enumerate(clips):
                payload = OptOutcome.from_raw(
                    engine.optimize(clip, **optimize_kwargs),
                    clip, simulator, search_nm, worker=0,
                    capture_mask=capture_masks,
                )
                outcomes.append(payload)
                if on_outcome is not None:
                    on_outcome(index, payload)
            return outcomes
        finally:
            if saved_rng_state is not None:
                np.random.set_state(saved_rng_state)

    # -- the sharded path ----------------------------------------------------
    def run(
        self,
        clips: Sequence[Clip],
        optimize_kwargs: dict | None = None,
        on_outcome: Callable[[int, OptOutcome], None] | None = None,
        capture_masks: bool = True,
    ) -> list[OptOutcome]:
        """Sweep ``clips``; returns outcomes in clip order.

        ``on_outcome(index, outcome)`` fires in the parent as each clip
        finishes — this is where the service hooks streaming
        verification.  ``capture_masks=False`` tells workers not to
        rasterize/ship final masks (for verification-free sweeps the
        parent would discard them).  Raises :class:`ServiceError` if any
        worker raises or dies; sibling workers are terminated before the
        raise, so the caller never inherits a half-alive fleet.
        """
        clip_list = list(clips)
        if not clip_list:
            raise ServiceError("sharded run needs at least one clip")
        kwargs = dict(optimize_kwargs or {})
        workers = min(self.workers, len(clip_list))
        if workers == 1:
            return self._run_inline(
                clip_list, kwargs, on_outcome, capture_masks
            )

        assignments = [
            list(enumerate(clip_list))[w::workers] for w in range(workers)
        ]
        ctx = mp.get_context(self.start_method)
        out_queue = ctx.Queue()

        # All pipe reads happen on a daemon relay thread, never on this
        # thread.  A mask payload spans many pipe writes, so a worker
        # SIGKILLed mid-write leaves a torn frame that would block a
        # direct `out_queue.get()` *after* its timeout-bearing poll said
        # data was ready — an unbounded hang.  With the relay, only the
        # drainer can get stuck on a torn frame; this thread polls the
        # in-process queue with real timeouts and still reaches the
        # liveness check, so the sweep fails with ServiceError instead
        # of hanging (the stuck daemon thread is abandoned at exit).
        relay: queue_mod.Queue = queue_mod.Queue()
        stop_draining = threading.Event()

        def drain() -> None:
            while not stop_draining.is_set():
                try:
                    message = out_queue.get(timeout=_POLL_INTERVAL_S)
                except queue_mod.Empty:
                    continue
                except BaseException as exc:  # noqa: BLE001 - relayed
                    # Closed queue on shutdown, or a misframed payload
                    # from a killed writer failing to unpickle.
                    if not stop_draining.is_set():
                        relay.put(("corrupt", None, None,
                                   _describe_error(exc)))
                    return
                relay.put(message)

        drainer = threading.Thread(
            target=drain, daemon=True, name="repro-shard-drain"
        )
        procs = [
            ctx.Process(
                target=_shard_worker,
                args=(w, self.spec, assignments[w], kwargs, capture_masks,
                      out_queue),
                daemon=True,
                name=f"repro-shard-{w}",
            )
            for w in range(workers)
        ]
        outcomes: list[OptOutcome | None] = [None] * len(clip_list)
        received: list[set[int]] = [set() for _ in range(workers)]
        exited: set[int] = set()
        dead_since: dict[int, float] = {}
        try:
            for proc in procs:
                proc.start()
            drainer.start()
            pending = len(clip_list)
            while pending > 0 or len(exited) < workers:
                try:
                    kind, wid, index, payload = relay.get(
                        timeout=_POLL_INTERVAL_S
                    )
                except queue_mod.Empty:
                    self._check_liveness(
                        procs, assignments, received, exited, dead_since
                    )
                    continue
                if kind == "ok":
                    outcomes[index] = payload
                    received[wid].add(index)
                    pending -= 1
                    if on_outcome is not None:
                        on_outcome(index, payload)
                elif kind == "error":
                    clip = clip_list[index]
                    raise ServiceError(
                        f"shard worker {wid} failed optimizing clip "
                        f"{clip.name!r} ({self.spec.label}): {payload}"
                    )
                elif kind == "fatal":
                    raise ServiceError(
                        f"shard worker {wid} could not build engine "
                        f"{self.spec.label!r}: {payload}"
                    )
                elif kind == "exit":
                    exited.add(wid)
                elif kind == "corrupt":
                    raise ServiceError(
                        f"shard result stream corrupted "
                        f"({self.spec.label}): {payload}"
                    )
                else:  # pragma: no cover - protocol bug guard
                    raise ServiceError(
                        f"unknown shard message kind {kind!r}"
                    )
        finally:
            stop_draining.set()
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=5.0)
            out_queue.close()
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _check_liveness(
        self,
        procs: list,
        assignments: list[list[tuple[int, Clip]]],
        received: list[set[int]],
        exited: set[int],
        dead_since: dict[int, float],
    ) -> None:
        """Raise for any worker that died without a clean ``exit``.

        The queue just came up empty; if a non-exited worker's process
        has an exitcode, its pipe may still hold in-flight messages, so
        the crash is only declared after a grace window with the queue
        still dry (messages received meanwhile reset nothing — the main
        loop consumes them and comes back here only on another dry
        poll).
        """
        now = time.monotonic()
        for wid, proc in enumerate(procs):
            if wid in exited or proc.exitcode is None:
                continue
            first_seen = dead_since.setdefault(wid, now)
            if now - first_seen < _CRASH_GRACE_S:
                continue
            in_flight = next(
                (
                    clip for index, clip in assignments[wid]
                    if index not in received[wid]
                ),
                None,
            )
            where = (
                f"while optimizing clip {in_flight.name!r}"
                if in_flight is not None
                else "after finishing its clips but before its exit message"
            )
            raise ServiceError(
                f"shard worker {wid} ({self.spec.label}) died with exit "
                f"code {proc.exitcode} {where}; sweep aborted"
            )
