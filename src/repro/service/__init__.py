"""Serving-grade front door for mask optimization.

This package is the single public entry point from "here is a clip" to
"here are its reported-and-verified EPE / PV-band numbers".  Everything
below it — the CAMO agent, the baseline engines, the frequency-native
lithography core, the batched metrology — stays importable, but scripts,
examples, benchmarks, and the ``python -m repro`` CLI all route through
here so cross-clip batching and kernel-spectra persistence happen in one
place instead of being re-wired per caller.

Request lifecycle
-----------------

::

    caller                MaskOptService                      litho/metrology
    ------                --------------                      ---------------
    OptRequest ──submit──▶ queue (ticket id)
                               │
                 run_all() / map_suite()
                               │
                     engine_for(request) ── registry build + train
                               │              (cached per name/overrides)
                     engine.optimize(clip)  ── per-clip OPC loop
                               │                (engines unchanged)
                               ▼
                  ShapeBinScheduler.add_outcome
                     bins by (grid shape, EPE search range)
                     across clips *and* engines
                               │
                            flush ──────▶ one simulate_batch per bin
                               │          one measure_epe_grouped per bin
                     drift check: |reported − re-measured| ≤ 1e-6 nm
                               │          (MetrologyError on divergence)
                               ▼
    OptResult ◀── verified_epe_nm, EPE/PVB/RT/steps, outcome

Components:

* :class:`~repro.service.api.OptRequest` / :class:`~repro.service.api.
  OptResult` — typed, JSON-friendly request/response records.
* :mod:`repro.service.registry` — engines by name (``camo``, ``mbopc`` /
  ``calibre``, ``rlopc``, ``damo``, ``ilt``), extensible via
  :func:`~repro.service.registry.register_engine`.
* :class:`~repro.service.scheduler.ShapeBinScheduler` — the cross-clip
  batching heart: at most one ``simulate_batch`` (which itself sweeps
  all three process corners from one shared forward FFT) and one
  ``measure_epe_grouped`` per (grid-shape, search-range) bin per
  verification pass.
* :class:`~repro.service.service.MaskOptService` — queue, engine cache,
  sync ``submit``/``run_all``, and the thread-pooled ``map_suite`` for
  multi-core hosts (pair with ``LithoConfig(backend="scipy")``, whose
  transforms release the GIL and split across the batch axis, or
  ``backend="torch"`` to move the compact band path onto a device).
* :class:`~repro.service.sharding.ShardedSuiteRunner` — process-based
  sharding *within* one engine's suite (``map_suite(workers=N)``,
  ``run_suite_sharded``, CLI ``--workers N``): N spawned workers rebuild
  the engine from a picklable :class:`~repro.service.sharding.
  EngineSpec`, share one on-disk kernel-spectra store, and stream
  :class:`~repro.service.sharding.OptOutcome` payloads back as clips
  finish so verification (``flush_ready``) overlaps optimization.
  Sharding reorders work, never numbers — sharded results are
  bit-for-bit identical to the sequential sweep.
* :class:`~repro.service.workqueue.WorkStealingPool` — the persistent
  warm worker fleet under both sharded sweeps and the daemon: one
  shared task queue per engine spec, workers pull the next clip the
  moment they free up, crashed workers are revivable in place.
* :class:`~repro.service.daemon.MaskOptDaemon` — the always-on asyncio
  front door (``python -m repro serve``): ``await submit(request,
  tenant=...)`` continuously, per-tenant bounded queues that shed load
  with :class:`~repro.errors.ServiceBusy`, streaming verification on a
  dedicated thread, crashed workers revived without dropping the
  daemon, graceful drain-and-shutdown.

The shared simulator inherits everything from
:class:`~repro.litho.simulator.LithoConfig`, including
``spectra_store=`` — point it (or the ``REPRO_SPECTRA_STORE`` env
variable consumed by the CLI) at a directory and short-lived workers
skip the per-shape TCC warmup entirely (:mod:`repro.litho.store`).

Numerical contract: service results are bit-for-bit identical to the
pre-service per-script path (direct ``engine.optimize`` + one-at-a-time
re-simulation); batching only amortizes transforms, it never changes a
reported number.
"""

from repro.errors import (
    DeadlineExceeded,
    FaultInjected,
    JournalError,
    RetriesExhausted,
    ServiceBusy,
    ServiceError,
)
from repro.service.api import OptRequest, OptResult
from repro.service.daemon import MaskOptDaemon
from repro.service.faults import (
    FaultPlan,
    FaultRule,
    clear_fault_plan,
    install_fault_plan,
    maybe_fault,
)
from repro.service.journal import (
    OutcomeJournal,
    open_journal,
    resume_suite,
)
from repro.service.registry import (
    available_engines,
    build_engine,
    create_engine,
    register_engine,
)
from repro.service.scheduler import (
    ShapeBinScheduler,
    VerifyItem,
    final_mask_image,
)
from repro.service.service import (
    DEFAULT_RETRIES,
    MaskOptService,
    engine_epe_search_nm,
)
from repro.service.sharding import (
    EngineSpec,
    OptOutcome,
    ShardedSuiteRunner,
)
from repro.service.workqueue import Task, TaskEvent, WorkStealingPool

__all__ = [
    "OptRequest",
    "OptResult",
    "MaskOptService",
    "MaskOptDaemon",
    "ServiceBusy",
    "ServiceError",
    "DeadlineExceeded",
    "FaultInjected",
    "JournalError",
    "RetriesExhausted",
    "DEFAULT_RETRIES",
    "FaultPlan",
    "FaultRule",
    "clear_fault_plan",
    "install_fault_plan",
    "maybe_fault",
    "OutcomeJournal",
    "open_journal",
    "resume_suite",
    "available_engines",
    "build_engine",
    "create_engine",
    "register_engine",
    "ShapeBinScheduler",
    "VerifyItem",
    "final_mask_image",
    "engine_epe_search_nm",
    "EngineSpec",
    "OptOutcome",
    "ShardedSuiteRunner",
    "Task",
    "TaskEvent",
    "WorkStealingPool",
]
