"""Squish-pattern layout encoding (Fig. 3 of the paper).

A squish pattern compresses a layout window into a small topology matrix
``M`` plus geometry vectors ``delta_x`` / ``delta_y`` holding the grid
spacings in nanometres.  The *adaptive* squish pattern re-grids ``(M, dx,
dy)`` to a fixed tensor shape so a neural network can consume windows of
arbitrary complexity.  CAMO stacks two such tensors: one for the current
mask, one with extra scanlines at the target-pattern edges to highlight
edge movements — six channels in total.
"""

from repro.squish.scanlines import scanline_positions
from repro.squish.squish import SquishPattern, encode_squish
from repro.squish.adaptive import adaptive_squish_tensor
from repro.squish.features import NodeFeatureEncoder

__all__ = [
    "scanline_positions",
    "SquishPattern",
    "encode_squish",
    "adaptive_squish_tensor",
    "NodeFeatureEncoder",
]
