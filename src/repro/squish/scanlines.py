"""Scanline extraction for squish encoding."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SquishError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


def scanline_positions(
    polygons: Iterable[Polygon],
    window: Rect,
    extra_x: Sequence[float] = (),
    extra_y: Sequence[float] = (),
    tolerance: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique scanline coordinates covering a window.

    Scanlines are placed at the window borders and at every polygon edge
    coordinate that falls inside the window; callers can force additional
    scanlines (CAMO adds the *target* edges when encoding the mask).

    Returns:
        ``(xs, ys)`` strictly increasing coordinate arrays, both starting
        at the window's low edge and ending at its high edge.
    """
    xs: list[float] = [window.x0, window.x1]
    ys: list[float] = [window.y0, window.y1]
    for polygon in polygons:
        for x, y in polygon.vertices:
            if window.x0 < x < window.x1:
                xs.append(x)
            if window.y0 < y < window.y1:
                ys.append(y)
    xs.extend(x for x in extra_x if window.x0 < x < window.x1)
    ys.extend(y for y in extra_y if window.y0 < y < window.y1)

    xs_arr = _dedupe_sorted(np.asarray(xs, dtype=np.float64), tolerance)
    ys_arr = _dedupe_sorted(np.asarray(ys, dtype=np.float64), tolerance)
    if len(xs_arr) < 2 or len(ys_arr) < 2:
        raise SquishError("window degenerated to fewer than two scanlines")
    return xs_arr, ys_arr


def _dedupe_sorted(values: np.ndarray, tolerance: float) -> np.ndarray:
    ordered = np.sort(values)
    keep = np.empty(len(ordered), dtype=bool)
    keep[0] = True
    keep[1:] = np.diff(ordered) > tolerance
    return ordered[keep]
