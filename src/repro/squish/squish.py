"""Squish pattern encoding: ``(M, delta_x, delta_y)``.

The scanline grid splits the window into cells that never straddle a
polygon edge, so testing each cell *centre* against the geometry gives an
exact occupancy matrix.  The spacing vectors record each cell's physical
extent — together they reproduce the window geometry losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import SquishError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.squish.scanlines import scanline_positions


@dataclass(frozen=True)
class SquishPattern:
    """A squished window.

    Attributes:
        matrix: ``(ny, nx)`` uint8 occupancy (row 0 = bottom cells).
        delta_x: ``(nx,)`` cell widths in nm.
        delta_y: ``(ny,)`` cell heights in nm.
        origin: Window low corner ``(x0, y0)``.
    """

    matrix: np.ndarray
    delta_x: np.ndarray
    delta_y: np.ndarray
    origin: tuple[float, float]

    def __post_init__(self) -> None:
        ny, nx = self.matrix.shape
        if len(self.delta_x) != nx or len(self.delta_y) != ny:
            raise SquishError(
                f"matrix {self.matrix.shape} inconsistent with deltas "
                f"({len(self.delta_y)}, {len(self.delta_x)})"
            )

    @property
    def width(self) -> float:
        return float(self.delta_x.sum())

    @property
    def height(self) -> float:
        return float(self.delta_y.sum())

    @property
    def covered_area(self) -> float:
        """Total geometry area inside the window (nm^2)."""
        return float(self.delta_y @ self.matrix.astype(np.float64) @ self.delta_x)

    def to_dense(self, pixel_nm: float) -> np.ndarray:
        """Expand back to a uniform raster (for tests and visualization)."""
        if pixel_nm <= 0:
            raise SquishError("pixel_nm must be positive")
        cols = np.maximum(1, np.round(self.delta_x / pixel_nm).astype(int))
        rows = np.maximum(1, np.round(self.delta_y / pixel_nm).astype(int))
        return np.repeat(np.repeat(self.matrix, rows, axis=0), cols, axis=1)


def encode_squish(
    polygons: Iterable[Polygon],
    window: Rect,
    extra_x: Sequence[float] = (),
    extra_y: Sequence[float] = (),
) -> SquishPattern:
    """Squish-encode the geometry visible in ``window``.

    ``extra_x`` / ``extra_y`` force additional scanlines (CAMO's
    target-edge highlighting); they refine the grid without changing the
    encoded geometry.
    """
    polys = list(polygons)
    xs, ys = scanline_positions(polys, window, extra_x=extra_x, extra_y=extra_y)
    matrix = _occupancy(polys, xs, ys)
    return SquishPattern(
        matrix=matrix,
        delta_x=np.diff(xs),
        delta_y=np.diff(ys),
        origin=(window.x0, window.y0),
    )


def _occupancy(polygons: list[Polygon], xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorized even-odd test of every cell centre against every polygon."""
    cx = (xs[:-1] + xs[1:]) / 2
    cy = (ys[:-1] + ys[1:]) / 2
    occupied = np.zeros((len(cy), len(cx)), dtype=bool)
    for polygon in polygons:
        inside = np.zeros_like(occupied)
        verts = polygon.vertices
        n = len(verts)
        for i in range(n):
            (ax, ay), (bx, by) = verts[i], verts[(i + 1) % n]
            if ax != bx:
                continue  # crossing counts use vertical edges only
            y_lo, y_hi = (ay, by) if ay < by else (by, ay)
            row_hit = (cy >= y_lo) & (cy < y_hi)
            col_hit = cx < ax
            inside ^= row_hit[:, None] & col_hit[None, :]
        occupied |= inside
    return occupied.astype(np.uint8)
