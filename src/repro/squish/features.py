"""CAMO node-feature encoding.

For each segment, a window (500 nm in the paper) is centred at the control
point and squish-encoded twice on a *shared* scanline grid (the union of
mask-edge and target-edge scanlines):

* channels 0-2 — adaptive squish of the current *mask* (targets moved by
  their offsets, plus SRAFs): occupancy, dx, dy;
* channels 3-5 — adaptive squish of the *target* patterns on the same
  grid.

The paper describes the second tensor as the mask re-encoded "with
additional scanlines at the edge of the target patterns to highlight the
edge movements"; encoding the target itself on the union grid realizes
that intent in the most learnable form — every cell where the mask has
moved off the target shows up as an occupancy difference between channels
0 and 3, which a small CNN can read directly.  Because both patterns share
the scanline grid, their adaptive re-gridding stays cell-aligned.

RL-OPC's original 3-channel encoding (mask only) is exposed separately for
the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FEATURE_WINDOW_NM
from repro.errors import SquishError
from repro.geometry.mask_edit import MaskState
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.segmentation import Segment
from repro.squish.adaptive import adaptive_squish_tensor
from repro.squish.squish import encode_squish


@dataclass(frozen=True)
class NodeFeatureEncoder:
    """Encodes per-segment feature tensors from a mask state.

    Attributes:
        window_nm: Edge length of the square feature window.
        out_size: Output tensor edge (paper: 128 for via, 64 for metal).
        channels: 6 for CAMO's doubled encoding, 3 for RL-OPC style.
    """

    window_nm: float = FEATURE_WINDOW_NM
    out_size: int = 64
    channels: int = 6

    def __post_init__(self) -> None:
        if self.window_nm <= 0:
            raise SquishError("window_nm must be positive")
        if self.out_size < 4:
            raise SquishError("out_size must be at least 4")
        if self.channels not in (3, 6):
            raise SquishError("channels must be 3 (mask only) or 6 (CAMO)")

    def encode_segment(self, state: MaskState, segment: Segment) -> np.ndarray:
        """Feature tensor ``(channels, out_size, out_size)`` for one node."""
        cx, cy = segment.control
        window = Rect.from_center(cx, cy, self.window_nm, self.window_nm)
        mask_polys = _clip_polygons(state.mask_polygons(), window)

        if self.channels == 3:
            mask_pattern = encode_squish(mask_polys, window)
            return adaptive_squish_tensor(mask_pattern, self.out_size, self.out_size)

        target_polys = _clip_polygons(state.clip.targets, window)
        target_x, target_y = _vertex_scanlines(target_polys, window)
        mask_x, mask_y = _vertex_scanlines(mask_polys, window)
        mask_pattern = encode_squish(
            mask_polys, window, extra_x=target_x, extra_y=target_y
        )
        target_pattern = encode_squish(
            target_polys, window, extra_x=mask_x, extra_y=mask_y
        )
        tensor = adaptive_squish_tensor(mask_pattern, self.out_size, self.out_size)
        tensor_t = adaptive_squish_tensor(target_pattern, self.out_size, self.out_size)
        return np.concatenate([tensor, tensor_t], axis=0)

    def encode_all(self, state: MaskState) -> np.ndarray:
        """Feature tensors for every segment: ``(n, channels, s, s)``."""
        return np.stack(
            [self.encode_segment(state, seg) for seg in state.segments]
        )


def _clip_polygons(
    polygons: tuple[Polygon, ...], window: Rect
) -> list[Polygon]:
    """Polygons whose bounding box overlaps the window."""
    return [p for p in polygons if p.bbox.intersects(window)]


def _vertex_scanlines(
    polygons: list[Polygon], window: Rect
) -> tuple[list[float], list[float]]:
    """Scanline coordinates at every polygon edge inside the window."""
    xs: list[float] = []
    ys: list[float] = []
    for polygon in polygons:
        for x, y in polygon.vertices:
            xs.append(x)
            ys.append(y)
    return xs, ys
