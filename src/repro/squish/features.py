"""CAMO node-feature encoding.

For each segment, a window (500 nm in the paper) is centred at the control
point and squish-encoded twice on a *shared* scanline grid (the union of
mask-edge and target-edge scanlines):

* channels 0-2 — adaptive squish of the current *mask* (targets moved by
  their offsets, plus SRAFs): occupancy, dx, dy;
* channels 3-5 — adaptive squish of the *target* patterns on the same
  grid.

The paper describes the second tensor as the mask re-encoded "with
additional scanlines at the edge of the target patterns to highlight the
edge movements"; encoding the target itself on the union grid realizes
that intent in the most learnable form — every cell where the mask has
moved off the target shows up as an occupancy difference between channels
0 and 3, which a small CNN can read directly.  Because both patterns share
the scanline grid, their adaptive re-gridding stays cell-aligned.

Population batching: :meth:`NodeFeatureEncoder.encode_all_population`
encodes all P population members of a segment through *one* scanline
union (the target edges plus every member's mask edges).  The union grid
is a refinement of each member's own grid, so the encoded geometry is
unchanged, and the target channels become identical across members — one
target encode per segment replaces P.  With a single state the union
degenerates to exactly the per-window grid, so P=1 encodings are
bit-for-bit identical to :meth:`encode_all`.

RL-OPC's original 3-channel encoding (mask only) is exposed separately for
the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constants import FEATURE_WINDOW_NM
from repro.errors import SquishError
from repro.geometry.mask_edit import MaskState
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.segmentation import Segment
from repro.squish.adaptive import adaptive_squish_tensor
from repro.squish.squish import encode_squish


@dataclass(frozen=True)
class NodeFeatureEncoder:
    """Encodes per-segment feature tensors from a mask state.

    Attributes:
        window_nm: Edge length of the square feature window.
        out_size: Output tensor edge (paper: 128 for via, 64 for metal).
        channels: 6 for CAMO's doubled encoding, 3 for RL-OPC style.
    """

    window_nm: float = FEATURE_WINDOW_NM
    out_size: int = 64
    channels: int = 6

    def __post_init__(self) -> None:
        if self.window_nm <= 0:
            raise SquishError("window_nm must be positive")
        if self.out_size < 4:
            raise SquishError("out_size must be at least 4")
        if self.channels not in (3, 6):
            raise SquishError("channels must be 3 (mask only) or 6 (CAMO)")

    def _window(self, segment: Segment) -> Rect:
        cx, cy = segment.control
        return Rect.from_center(cx, cy, self.window_nm, self.window_nm)

    def _mask_tensor(
        self,
        mask_polys: list[Polygon],
        window: Rect,
        extra_x: Sequence[float],
        extra_y: Sequence[float],
    ) -> np.ndarray:
        pattern = encode_squish(
            mask_polys, window, extra_x=extra_x, extra_y=extra_y
        )
        return adaptive_squish_tensor(pattern, self.out_size, self.out_size)

    def encode_segment(self, state: MaskState, segment: Segment) -> np.ndarray:
        """Feature tensor ``(channels, out_size, out_size)`` for one node."""
        window = self._window(segment)
        mask_polys = _clip_polygons(state.mask_polygons(), window)

        if self.channels == 3:
            mask_pattern = encode_squish(mask_polys, window)
            return adaptive_squish_tensor(mask_pattern, self.out_size, self.out_size)

        target_polys = _clip_polygons(state.clip.targets, window)
        target_x, target_y = _vertex_scanlines(target_polys)
        mask_x, mask_y = _vertex_scanlines(mask_polys)
        tensor = self._mask_tensor(mask_polys, window, target_x, target_y)
        target_pattern = encode_squish(
            target_polys, window, extra_x=mask_x, extra_y=mask_y
        )
        tensor_t = adaptive_squish_tensor(target_pattern, self.out_size, self.out_size)
        return np.concatenate([tensor, tensor_t], axis=0)

    def encode_all(self, state: MaskState) -> np.ndarray:
        """Feature tensors for every segment: ``(n, channels, s, s)``."""
        return np.stack(
            [self.encode_segment(state, seg) for seg in state.segments]
        )

    # -- population batching -------------------------------------------------
    def encode_segment_population(
        self, states: Sequence[MaskState], segment: Segment
    ) -> np.ndarray:
        """``(P, channels, s, s)`` tensors for one segment across P states.

        All members share one scanline union (target edges + every
        member's mask edges), so the target channels are encoded once and
        broadcast.  With ``P == 1`` the union equals the per-window grid
        and the result is bit-for-bit :meth:`encode_segment`.
        """
        if not states:
            raise SquishError("population encoding needs at least one state")
        window = self._window(segment)
        members = [
            _clip_polygons(state.mask_polygons(), window) for state in states
        ]
        target_polys = _clip_polygons(states[0].clip.targets, window)
        union_x, union_y = _vertex_scanlines(target_polys)
        for mask_polys in members:
            mask_x, mask_y = _vertex_scanlines(mask_polys)
            union_x = union_x + mask_x
            union_y = union_y + mask_y
        target_pattern = encode_squish(
            target_polys, window, extra_x=union_x, extra_y=union_y
        )
        tensor_t = adaptive_squish_tensor(
            target_pattern, self.out_size, self.out_size
        )
        return np.stack(
            [
                np.concatenate(
                    [
                        self._mask_tensor(mask_polys, window, union_x, union_y),
                        tensor_t,
                    ],
                    axis=0,
                )
                for mask_polys in members
            ]
        )

    def encode_all_population(
        self, states: Sequence[MaskState]
    ) -> np.ndarray:
        """Feature tensors for P lockstep states: ``(P, n, channels, s, s)``.

        The population members must share one clip (the lockstep training
        invariant); each segment is encoded through a shared scanline
        union.  3-channel encoders have no cross-member sharing to
        exploit and fall back to per-state :meth:`encode_all`.
        """
        if not states:
            raise SquishError("population encoding needs at least one state")
        if self.channels == 3:
            return np.stack([self.encode_all(state) for state in states])
        segments = states[0].segments
        if any(len(state.segments) != len(segments) for state in states[1:]):
            raise SquishError(
                "population members must share one clip's segments"
            )
        return np.stack(
            [
                self.encode_segment_population(states, seg)
                for seg in segments
            ],
            axis=1,
        )


def _clip_polygons(
    polygons: tuple[Polygon, ...], window: Rect
) -> list[Polygon]:
    """Polygons whose bounding box overlaps the window."""
    return [p for p in polygons if p.bbox.intersects(window)]


def _vertex_scanlines(
    polygons: list[Polygon],
) -> tuple[list[float], list[float]]:
    """Scanline coordinates at every polygon vertex."""
    xs: list[float] = []
    ys: list[float] = []
    for polygon in polygons:
        for x, y in polygon.vertices:
            xs.append(x)
            ys.append(y)
    return xs, ys
