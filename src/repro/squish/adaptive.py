"""Adaptive squish patterns: re-gridding to a fixed tensor shape.

Neural policies need constant input dimensions, but squish matrices vary
with window complexity.  Following Yang et al. (ASPDAC'19), we *split* the
widest grid intervals (occupancy unchanged, spacing halved) until the
matrix reaches the requested shape, or *merge* the narrowest adjacent
interval pairs when a window is more complex than the target shape.
Merging ORs occupancy — a conservative, slightly lossy reduction that
keeps every geometry edge visible.

The output tensor has three channels: occupancy, normalized column widths
(broadcast down columns), and normalized row heights (broadcast across
rows).  Spacings are normalized *relative to the uniform cell size*
(``value 1.0`` = the window divided evenly), so the sliver cells created
by nanometre-scale mask offsets stand out numerically — normalizing by
the full window extent would bury a 2 nm sliver in a 500 nm window at
4e-3, far below what a small CNN can separate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SquishError
from repro.squish.squish import SquishPattern


def adaptive_squish_tensor(
    pattern: SquishPattern, out_x: int, out_y: int
) -> np.ndarray:
    """Fixed-shape ``(3, out_y, out_x)`` tensor from a squish pattern.

    Spacing channels are normalized by the window extent so every value
    lies in ``[0, 1]`` regardless of window size.
    """
    if out_x < 2 or out_y < 2:
        raise SquishError(f"output shape too small: ({out_y}, {out_x})")

    matrix = pattern.matrix.astype(np.uint8)
    dx = pattern.delta_x.astype(np.float64).copy()
    dy = pattern.delta_y.astype(np.float64).copy()

    matrix, dx = _fit_axis(matrix, dx, out_x, axis=1)
    matrix, dy = _fit_axis(matrix, dy, out_y, axis=0)

    uniform_w = dx.sum() / out_x
    uniform_h = dy.sum() / out_y
    tensor = np.empty((3, out_y, out_x), dtype=np.float64)
    tensor[0] = matrix
    # log1p compresses the wide dynamic range (slivers ~0.03 of a uniform
    # cell, merged cells ~16 of one) into a CNN-friendly scale while
    # keeping the mapping monotone and invertible (expm1).
    tensor[1] = np.broadcast_to(
        np.log1p(dx[None, :] / uniform_w), (out_y, out_x)
    )
    tensor[2] = np.broadcast_to(
        np.log1p(dy[:, None] / uniform_h), (out_y, out_x)
    )
    return tensor


def _fit_axis(
    matrix: np.ndarray, deltas: np.ndarray, target: int, axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split / merge along one axis until ``len(deltas) == target``."""
    while len(deltas) < target:
        matrix, deltas = _split_widest(matrix, deltas, axis)
    while len(deltas) > target:
        matrix, deltas = _merge_narrowest(matrix, deltas, axis)
    return matrix, deltas


def _split_widest(
    matrix: np.ndarray, deltas: np.ndarray, axis: int
) -> tuple[np.ndarray, np.ndarray]:
    k = int(np.argmax(deltas))
    half = deltas[k] / 2
    new_deltas = np.concatenate([deltas[:k], [half, half], deltas[k + 1 :]])
    line = matrix[:, k : k + 1] if axis == 1 else matrix[k : k + 1, :]
    matrix = np.concatenate(
        [
            matrix[:, :k] if axis == 1 else matrix[:k, :],
            line,
            matrix[:, k:] if axis == 1 else matrix[k:, :],
        ],
        axis=axis,
    )
    return matrix, new_deltas


def _merge_narrowest(
    matrix: np.ndarray, deltas: np.ndarray, axis: int
) -> tuple[np.ndarray, np.ndarray]:
    pair_widths = deltas[:-1] + deltas[1:]
    k = int(np.argmin(pair_widths))
    new_deltas = np.concatenate([deltas[:k], [pair_widths[k]], deltas[k + 2 :]])
    if axis == 1:
        merged = matrix[:, k] | matrix[:, k + 1]
        matrix = np.concatenate(
            [matrix[:, :k], merged[:, None], matrix[:, k + 2 :]], axis=1
        )
    else:
        merged = matrix[k, :] | matrix[k + 1, :]
        matrix = np.concatenate(
            [matrix[:k, :], merged[None, :], matrix[k + 2 :, :]], axis=0
        )
    return matrix, new_deltas
