"""Reverse-mode autograd tensor over numpy arrays.

Every differentiable operation builds a node in an implicit DAG; calling
:meth:`Tensor.backward` on a scalar loss topologically sorts the graph and
accumulates gradients into every tensor with ``requires_grad=True``.
Broadcasting is supported everywhere via gradient "unbroadcasting".
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable

import numpy as np

from repro.errors import NNError

_GRAD_ENABLED = True


@contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    return _GRAD_ENABLED


class Tensor:
    """An ndarray with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # keep numpy from hijacking operators

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward

    # -- basic info --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy); treat as read-only."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # -- autograd ------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (defaults to d(self)/d(self)=1)."""
        if not self.requires_grad:
            raise NNError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise NNError("backward() without grad only valid for scalars")
            grad = np.ones_like(self.data)

        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        for node in order:
            node.grad = np.zeros_like(node.data) if node.grad is None else node.grad
        self.grad = self.grad + grad
        for node in reversed(order):
            if node._backward is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(grad: np.ndarray) -> None:
            _accumulate(self, grad)
            _accumulate(other, grad)

        out._backward = backward
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(grad: np.ndarray) -> None:
            _accumulate(self, grad * other.data)
            _accumulate(other, grad * self.data)

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        return self * _ensure_tensor(other).pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return _ensure_tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Elementwise power with a constant exponent."""
        out = Tensor(
            self.data**exponent,
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            _accumulate(self, grad * exponent * self.data ** (exponent - 1.0))

        out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def __matmul__(self, other) -> "Tensor":
        other = _ensure_tensor(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _parents=(self, other),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                _accumulate(self, grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                _accumulate(other, np.swapaxes(self.data, -1, -2) @ grad)

        out._backward = backward
        return out

    # -- elementwise functions ---------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = Tensor(value, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray) -> None:
            _accumulate(self, grad * value)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(
            np.log(self.data), requires_grad=self.requires_grad, _parents=(self,)
        )

        def backward(grad: np.ndarray) -> None:
            _accumulate(self, grad / self.data)

        out._backward = backward
        return out

    # -- reductions ------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
            _accumulate(self, np.broadcast_to(expanded, self.data.shape))

        out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (
            self.data.size
            if axis is None
            else np.prod([self.data.shape[a] for a in np.atleast_1d(axis)])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    # -- shape manipulation ---------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(
            self.data.reshape(shape),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            _accumulate(self, grad.reshape(self.data.shape))

        out._backward = backward
        return out

    def transpose(self, *axes) -> "Tensor":
        axes_t = axes if axes else None
        out = Tensor(
            self.data.transpose(axes_t),
            requires_grad=self.requires_grad,
            _parents=(self,),
        )

        def backward(grad: np.ndarray) -> None:
            if axes_t is None:
                _accumulate(self, grad.transpose())
            else:
                _accumulate(self, grad.transpose(np.argsort(axes_t)))

        out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out = Tensor(
            self.data[key], requires_grad=self.requires_grad, _parents=(self,)
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                _accumulate(self, full)

        out._backward = backward
        return out


def _ensure_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _accumulate(tensor: Tensor, grad: np.ndarray) -> None:
    """Add ``grad`` into ``tensor.grad``, undoing numpy broadcasting."""
    if not tensor.requires_grad:
        return
    grad = _unbroadcast(grad, tensor.data.shape)
    if tensor.grad is None:
        tensor.grad = np.zeros_like(tensor.data)
    tensor.grad += grad


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` down to ``shape`` by summing broadcast axes."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Public coercion helper."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def tensors_require_grad(tensors: Iterable[Tensor]) -> bool:
    return any(t.requires_grad for t in tensors)
