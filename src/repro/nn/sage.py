"""GraphSAGE convolution (paper Eq. 4).

Mean-aggregates neighbour features and combines them with the node's own
feature by concatenation followed by a linear map — the classic GraphSAGE
"mean" variant from Hamilton et al. (NeurIPS'17) that the paper cites.
The graph topology enters as a fixed row-normalized adjacency matrix, so
the whole layer is two matmuls and stays inside autograd.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NNError
from repro.graphs.construction import SegmentGraph
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


def mean_adjacency(graph: SegmentGraph) -> np.ndarray:
    """Row-normalized neighbour-averaging matrix ``A`` with zero diagonal.

    Row ``i`` holds ``1 / deg(i)`` at each neighbour column; isolated nodes
    get an all-zero row (their aggregate is the zero vector).
    """
    n = graph.n_nodes
    adj = np.zeros((n, n), dtype=np.float64)
    for i, neighbors in enumerate(graph.neighbors):
        if neighbors:
            adj[i, neighbors] = 1.0 / len(neighbors)
    return adj


class GraphSAGEConv(Module):
    """One GraphSAGE level: ``out = act([x, mean_N(x)] W^T + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, 2 * in_features), rng)
        )
        self.bias = Parameter(init.zeros((out_features,)))

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        """``x`` is ``(n_nodes, in_features)`` — or ``(batch, n_nodes,
        in_features)`` for a population of independent graph copies, all
        sharing ``adjacency`` (the matmul broadcasts over the leading
        axis, so no cross-population edges exist).  Adjacency comes from
        :func:`mean_adjacency` (constant w.r.t. the graph)."""
        if x.ndim not in (2, 3) or x.shape[-1] != self.in_features:
            raise NNError(
                f"expected (..., n, {self.in_features}) input, got {x.shape}"
            )
        if adjacency.shape != (x.shape[-2], x.shape[-2]):
            raise NNError(
                f"adjacency {adjacency.shape} does not match {x.shape[-2]} nodes"
            )
        aggregated = Tensor(adjacency) @ x
        combined = F.concat([x, aggregated], axis=-1)
        return F.relu(combined @ self.weight.T + self.bias)
