"""Multi-layer Elman RNN (paper Eq. 5).

Each layer computes ``h_t = tanh(U x_t + W h_{t-1} + b)``; the top layer's
hidden states are the module output (CAMO adds a separate fully-connected
head on top).  The forward pass consumes a whole node sequence, matching
how CAMO walks segments in visit order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NNError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class ElmanRNN(Module):
    """Stacked Elman recurrent network.

    Args:
        input_size: Feature size of each sequence element.
        hidden_size: Hidden-state size (shared across layers).
        num_layers: Number of stacked recurrent layers (paper uses 3).
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise NNError(f"num_layers must be >= 1, got {num_layers}")
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            setattr(
                self,
                f"u{layer}",
                Parameter(init.xavier_uniform((hidden_size, in_size), rng)),
            )
            setattr(
                self,
                f"w{layer}",
                Parameter(init.xavier_uniform((hidden_size, hidden_size), rng)),
            )
            setattr(self, f"b{layer}", Parameter(init.zeros((hidden_size,))))

    def initial_state(self) -> list[Tensor]:
        """Zero hidden state per layer (shape ``(1, hidden)``)."""
        return [Tensor(np.zeros((1, self.hidden_size))) for _ in range(self.num_layers)]

    def step(self, x: Tensor, state: list[Tensor]) -> tuple[Tensor, list[Tensor]]:
        """One time step.  ``x`` is ``(batch, input_size)`` — every matmul
        broadcasts over the batch axis, so one call advances any number of
        independent sequences."""
        if len(state) != self.num_layers:
            raise NNError(f"state has {len(state)} layers, expected {self.num_layers}")
        new_state: list[Tensor] = []
        layer_input = x
        for layer in range(self.num_layers):
            u = getattr(self, f"u{layer}")
            w = getattr(self, f"w{layer}")
            b = getattr(self, f"b{layer}")
            hidden = F.tanh(layer_input @ u.T + state[layer] @ w.T + b)
            new_state.append(hidden)
            layer_input = hidden
        return layer_input, new_state

    def forward(self, sequence: Tensor) -> Tensor:
        """Process ``(seq_len, input_size)``; return ``(seq_len, hidden)``."""
        if sequence.ndim != 2 or sequence.shape[1] != self.input_size:
            raise NNError(
                f"expected (seq, {self.input_size}) input, got {sequence.shape}"
            )
        state = self.initial_state()
        outputs: list[Tensor] = []
        for t in range(sequence.shape[0]):
            out, state = self.step(sequence[t : t + 1], state)
            outputs.append(out)
        return F.concat(outputs, axis=0)

    def forward_batch(self, sequences: Tensor) -> Tensor:
        """Process ``(seq_len, batch, input_size)`` independent sequences.

        The recurrence runs once over time with a ``(batch, hidden)``
        state, so P sequences cost ``seq_len`` graph steps instead of
        ``P * seq_len``.  The hidden state never mixes columns; each
        column evolves as :meth:`forward` would evolve it alone, up to
        a few ulps of batched-matmul summation-order difference.
        Returns ``(seq_len, batch, hidden)``.
        """
        if sequences.ndim != 3 or sequences.shape[2] != self.input_size:
            raise NNError(
                f"expected (seq, batch, {self.input_size}) input, "
                f"got {sequences.shape}"
            )
        state = self.initial_state()
        outputs: list[Tensor] = []
        for t in range(sequences.shape[0]):
            out, state = self.step(sequences[t], state)
            outputs.append(out)
        return F.stack(outputs, axis=0)
