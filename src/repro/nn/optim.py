"""Optimizers: SGD (the paper's choice, lr 3e-4) and Adam."""

from __future__ import annotations

import numpy as np

from repro.errors import NNError
from repro.nn.module import Parameter


class Optimizer:
    def __init__(self, parameters, lr: float) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise NNError("optimizer received no parameters")
        if lr <= 0:
            raise NNError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most max_norm."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm > 0:
            scale = max_norm / (norm + 1e-12)
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 3e-4, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0 <= momentum < 1:
            raise NNError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * param.grad
            v *= self.beta2
            v += (1 - self.beta2) * param.grad**2
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
