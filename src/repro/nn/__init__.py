"""A compact numpy autograd neural-network framework.

PyTorch is not available in this environment, so the paper's policy
networks run on this substrate instead: a reverse-mode autograd tensor, the
layers CAMO needs (conv2d, linear, multi-layer Elman RNN, GraphSAGE), SGD
and Adam optimizers, and npz state-dict serialization.  All gradients are
analytic and covered by finite-difference checks in the test suite.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn.functional import (
    concat,
    conv2d,
    cross_entropy,
    irfft2,
    log_softmax,
    max_pool2d,
    relu,
    rfft2,
    sigmoid,
    softmax,
    stack,
    tanh,
)
from repro.nn.module import (
    CHECKPOINT_FORMAT_VERSION,
    Module,
    Parameter,
    Sequential,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    SpectralConv2d,
    Tanh,
)
from repro.nn.rnn import ElmanRNN
from repro.nn.sage import GraphSAGEConv
from repro.nn.optim import SGD, Adam
from repro.nn import init

__all__ = [
    "Tensor",
    "no_grad",
    "concat",
    "conv2d",
    "cross_entropy",
    "irfft2",
    "log_softmax",
    "max_pool2d",
    "relu",
    "rfft2",
    "sigmoid",
    "softmax",
    "stack",
    "tanh",
    "CHECKPOINT_FORMAT_VERSION",
    "Module",
    "Parameter",
    "Sequential",
    "load_checkpoint",
    "save_checkpoint",
    "Conv2d",
    "Flatten",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "SpectralConv2d",
    "Tanh",
    "ElmanRNN",
    "GraphSAGEConv",
    "SGD",
    "Adam",
    "init",
]
