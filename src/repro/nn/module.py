"""Module system: parameter registration, state dicts, containers."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import NNError
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: attribute assignment auto-registers parameters/children."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- persistence ------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise NNError(
                f"state dict mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise NNError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(np.float64).copy()

    def save(self, path: str) -> None:
        np.savez_compressed(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    # -- call protocol ------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chains modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x
