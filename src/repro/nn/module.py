"""Module system: parameter registration, state dicts, containers."""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Iterator

import numpy as np

from repro.errors import NNError
from repro.nn.tensor import Tensor

#: On-disk checkpoint format version.  Bump when the layout of the npz
#: payload changes incompatibly; ``load_checkpoint`` rejects mismatches.
CHECKPOINT_FORMAT_VERSION = 1

_META_PREFIX = "__repro_ckpt_"
_EXTRA_PREFIX = _META_PREFIX + "x_"


def _state_fingerprint(state: dict[str, np.ndarray]) -> str:
    """Order-independent sha256 over parameter names, shapes, and bytes."""
    digest = hashlib.sha256()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name], dtype=np.float64)
        digest.update(name.encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_checkpoint(
    path: str,
    state: dict[str, np.ndarray],
    extra: dict[str, object] | None = None,
) -> None:
    """Atomically persist a state dict as a versioned, fingerprinted npz.

    The write goes to a temp file in the destination directory and lands
    via ``os.replace`` (same convention as ``litho/store.py``), so readers
    never observe a torn checkpoint.  Alongside the parameters the npz
    carries a format-version entry, a sha256 fingerprint of the parameter
    payload (verified on load — bit rot fails loudly instead of serving a
    corrupted model), and optional ``extra`` metadata scalars/arrays.
    ``numpy.savez_compressed`` is byte-deterministic, so identical state
    yields identical checkpoint bytes.
    """
    payload: dict[str, np.ndarray] = {
        name: np.ascontiguousarray(value, dtype=np.float64)
        for name, value in state.items()
    }
    for name in payload:
        if name.startswith(_META_PREFIX):
            raise NNError(f"parameter name collides with checkpoint meta: {name}")
    meta: dict[str, np.ndarray] = {
        _META_PREFIX + "version": np.array(CHECKPOINT_FORMAT_VERSION),
        _META_PREFIX + "fingerprint": np.array(_state_fingerprint(payload)),
    }
    for key, value in (extra or {}).items():
        meta[_EXTRA_PREFIX + key] = np.asarray(value)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload, **meta)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Load ``(state, extra)`` from a checkpoint written by :func:`save_checkpoint`.

    Verifies the format version and the parameter fingerprint when the
    meta entries are present; a plain meta-free npz (the legacy
    ``Module.save`` output) still loads, with no verification to offer.
    """
    with np.load(path) as data:
        state: dict[str, np.ndarray] = {}
        meta: dict[str, np.ndarray] = {}
        extra: dict[str, np.ndarray] = {}
        for key in data.files:
            if key.startswith(_EXTRA_PREFIX):
                extra[key[len(_EXTRA_PREFIX) :]] = data[key]
            elif key.startswith(_META_PREFIX):
                meta[key[len(_META_PREFIX) :]] = data[key]
            else:
                state[key] = data[key]
    if meta:
        version = int(meta["version"])
        if version != CHECKPOINT_FORMAT_VERSION:
            raise NNError(
                f"checkpoint format version {version} unsupported "
                f"(expected {CHECKPOINT_FORMAT_VERSION}): {path}"
            )
        expected = str(meta["fingerprint"][()])
        actual = _state_fingerprint(state)
        if actual != expected:
            raise NNError(
                f"checkpoint fingerprint mismatch (corrupt or tampered): {path}"
            )
    return state, extra


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: attribute assignment auto-registers parameters/children."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- persistence ------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise NNError(
                f"state dict mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise NNError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(np.float64).copy()

    def save(self, path: str) -> None:
        save_checkpoint(path, self.state_dict())

    def load(self, path: str) -> None:
        state, _ = load_checkpoint(path)
        self.load_state_dict(state)

    # -- call protocol ------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chains modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x
