"""Standard layers: Linear, Conv2d, pooling, activations."""

from __future__ import annotations

import numpy as np

from repro.errors import NNError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W^T + b`` on ``(n, in_features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise NNError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution layer over ``(N, C, H, W)`` tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            )
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class SpectralConv2d(Module):
    """Band-limited spectral convolution (FNO-style) on ``(N, C, H, W)``.

    Learns complex per-mode mixing weights on the lowest ``modes =
    (m1, m2)`` block of the half-width spectrum — both the positive- and
    negative-row halves, since a real-output spectral filter needs each.
    Mode counts are typically sized from the optics pupil band
    (``(b0 + 1, b1 + 1)`` covers every frequency the projection optics
    pass, see ``OpticalKernelSet.band_spectra``).  The layer is
    resolution-independent: one checkpoint applies to any raster with
    ``2 * m1 <= H`` and ``m2 <= W // 2 + 1``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        modes: tuple[int, int],
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        m1, m2 = int(modes[0]), int(modes[1])
        if m1 <= 0 or m2 <= 0:
            raise NNError(f"SpectralConv2d modes must be positive, got {modes!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes = (m1, m2)
        scale = 1.0 / (in_channels * np.sqrt(m1 * m2))
        shape = (out_channels, in_channels, m1, m2, 2)
        self.weight_pos = Parameter(rng.normal(0.0, scale, size=shape))
        self.weight_neg = Parameter(rng.normal(0.0, scale, size=shape))

    def _mix(self, block: Tensor, weight: Parameter) -> Tensor:
        """Complex contraction over input channels.

        ``block`` is ``(N, C, m1, m2, 2)``, ``weight`` ``(O, C, m1, m2, 2)``;
        the result is ``(N, O, m1, m2, 2)`` with the last axis ``[Re, Im]``.
        """
        n = block.shape[0]
        o, c, m1, m2, _ = weight.shape
        xr = block[..., 0].reshape(n, 1, c, m1, m2)
        xi = block[..., 1].reshape(n, 1, c, m1, m2)
        wr = weight[..., 0].reshape(1, o, c, m1, m2)
        wi = weight[..., 1].reshape(1, o, c, m1, m2)
        yr = (xr * wr - xi * wi).sum(axis=2)
        yi = (xr * wi + xi * wr).sum(axis=2)
        return F.stack([yr, yi], axis=-1)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise NNError(f"SpectralConv2d expects 4-D input, got {x.shape}")
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise NNError(f"channel mismatch: input {c}, layer {self.in_channels}")
        m1, m2 = self.modes
        half = w // 2 + 1
        if 2 * m1 > h or m2 > half:
            raise NNError(
                f"modes {self.modes} exceed the {h}x{half} half spectrum of "
                f"input {x.shape}"
            )
        spec = F.rfft2(x)
        top = self._mix(spec[:, :, :m1, :m2, :], self.weight_pos)
        bottom = self._mix(spec[:, :, h - m1 :, :m2, :], self.weight_neg)
        o = self.out_channels
        if m2 < half:
            pad_cols = Tensor(np.zeros((n, o, m1, half - m2, 2)))
            top = F.concat([top, pad_cols], axis=3)
            bottom = F.concat([bottom, pad_cols], axis=3)
        rows = [top]
        if 2 * m1 < h:
            rows.append(Tensor(np.zeros((n, o, h - 2 * m1, half, 2))))
        rows.append(bottom)
        return F.irfft2(F.concat(rows, axis=2), s=(h, w))


class MaxPool2d(Module):
    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, kernel=self.kernel)


class Flatten(Module):
    """Collapse all but the leading (batch) dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class GlobalAvgPool2d(Module):
    """Mean over the spatial dimensions: ``(N, C, H, W) -> (N, C)``.

    Translation-robust alternative to Flatten+Linear for encoder tails.
    """

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise NNError(f"GlobalAvgPool2d expects 4-D input, got {x.shape}")
        return x.mean(axis=(2, 3))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)
