"""Standard layers: Linear, Conv2d, pooling, activations."""

from __future__ import annotations

import numpy as np

from repro.errors import NNError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W^T + b`` on ``(n, in_features)`` inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise NNError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution layer over ``(N, C, H, W)`` tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            )
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class MaxPool2d(Module):
    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, kernel=self.kernel)


class Flatten(Module):
    """Collapse all but the leading (batch) dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class GlobalAvgPool2d(Module):
    """Mean over the spatial dimensions: ``(N, C, H, W) -> (N, C)``.

    Translation-robust alternative to Flatten+Linear for encoder tails.
    """

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise NNError(f"GlobalAvgPool2d expects 4-D input, got {x.shape}")
        return x.mean(axis=(2, 3))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)
