"""Weight initializers (deterministic given an rng)."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform: bound = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform for ReLU networks: bound = sqrt(6 / fan_in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[1], shape[0]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
