"""Differentiable operations beyond basic tensor arithmetic."""

from __future__ import annotations

import numpy as np

from repro.errors import NNError
from repro.nn.tensor import Tensor, _accumulate


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    out = Tensor(x.data * mask, requires_grad=x.requires_grad, _parents=(x,))

    def backward(grad: np.ndarray) -> None:
        _accumulate(x, grad * mask)

    out._backward = backward
    return out


def tanh(x: Tensor) -> Tensor:
    value = np.tanh(x.data)
    out = Tensor(value, requires_grad=x.requires_grad, _parents=(x,))

    def backward(grad: np.ndarray) -> None:
        _accumulate(x, grad * (1.0 - value * value))

    out._backward = backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    value = 1.0 / (1.0 + np.exp(-x.data))
    out = Tensor(value, requires_grad=x.requires_grad, _parents=(x,))

    def backward(grad: np.ndarray) -> None:
        _accumulate(x, grad * value * (1.0 - value))

    out._backward = backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax (the max shift is gradient-free)."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    exps = (x - shift).exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``logits``.

    ``logits`` has shape ``(n, classes)``; ``targets`` is ``(n,)`` ints.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise NNError(
            f"cross_entropy shapes: logits {logits.shape}, targets {targets.shape}"
        )
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(len(targets)), targets]
    return -picked.mean()


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    if not tensors:
        raise NNError("concat of zero tensors")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors))
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        for tensor, piece in zip(tensors, np.split(grad, splits, axis=axis)):
            _accumulate(tensor, piece)

    out._backward = backward
    return out


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    if not tensors:
        raise NNError("stack of zero tensors")
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors))

    def backward(grad: np.ndarray) -> None:
        for index, tensor in enumerate(tensors):
            _accumulate(tensor, np.take(grad, index, axis=axis))

    out._backward = backward
    return out


def rfft2(x: Tensor) -> Tensor:
    """Real 2-D FFT over the last two axes, returned *real-stacked*.

    ``(..., H, W)`` real input maps to a ``(..., H, W//2 + 1, 2)`` tensor
    whose last axis holds ``[Re, Im]`` of the half-width spectrum — the
    autograd tensor is float64-only, so complex spectra travel as a real
    pair.  The backward pass is the exact adjoint of the linear map
    ``numpy.fft.rfft2`` computes: zero-fill the unstored negative
    columns, inverse-transform, keep the real part.
    """
    if x.ndim < 2:
        raise NNError(f"rfft2 expects at least 2-D input, got {x.shape}")
    h, w = x.shape[-2:]
    spec = np.fft.rfft2(x.data, axes=(-2, -1))
    value = np.stack([spec.real, spec.imag], axis=-1)
    out = Tensor(value, requires_grad=x.requires_grad, _parents=(x,))

    def backward(grad: np.ndarray) -> None:
        g = grad[..., 0] + 1j * grad[..., 1]
        full = np.zeros((*g.shape[:-1], w), dtype=np.complex128)
        full[..., : g.shape[-1]] = g
        _accumulate(x, np.fft.ifft2(full, axes=(-2, -1)).real * (h * w))

    out._backward = backward
    return out


def irfft2(y: Tensor, s: tuple[int, int]) -> Tensor:
    """Inverse of :func:`rfft2`'s real-stacked half spectrum.

    ``(..., H, W//2 + 1, 2)`` maps to a real ``(..., H, W)`` tensor with
    ``s = (H, W)``.  The backward pass is ``rfft2`` of the upstream
    gradient scaled by ``2 / (H W)`` — except the self-conjugate columns
    (0 and, for even ``W``, the Nyquist column), which appear once in
    the full spectrum and take ``1 / (H W)``.  Verified against central
    differences of the numpy forward in the gradcheck suite.
    """
    height, width = int(s[0]), int(s[1])
    half = width // 2 + 1
    if y.ndim < 3 or y.shape[-3:] != (height, half, 2):
        raise NNError(
            f"irfft2 expects trailing dims ({height}, {half}, 2) for "
            f"s={s!r}, got {y.shape}"
        )
    spec = y.data[..., 0] + 1j * y.data[..., 1]
    value = np.fft.irfft2(spec, s=(height, width), axes=(-2, -1))
    out = Tensor(value, requires_grad=y.requires_grad, _parents=(y,))

    def backward(grad: np.ndarray) -> None:
        g = np.fft.rfft2(grad, axes=(-2, -1))
        scale = np.full(half, 2.0 / (height * width))
        scale[0] = 1.0 / (height * width)
        if width % 2 == 0:
            scale[-1] = 1.0 / (height * width)
        g = g * scale
        _accumulate(y, np.stack([g.real, g.imag], axis=-1))

    out._backward = backward
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) on ``(N, C, H, W)`` inputs.

    ``weight`` is ``(F, C, KH, KW)``; output is ``(N, F, OH, OW)``.
    Implemented with im2col so the heavy lifting is one matmul.
    """
    if x.ndim != 4 or weight.ndim != 4:
        raise NNError(f"conv2d expects 4-D input/weight, got {x.shape}/{weight.shape}")
    n, c, h, w = x.shape
    f, wc, kh, kw = weight.shape
    if wc != c:
        raise NNError(f"channel mismatch: input {c}, weight {wc}")
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise NNError(f"conv2d output would be empty: ({oh}, {ow})")

    padded = (
        np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        if padding
        else x.data
    )
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]  # (N, C, OH, OW, KH, KW)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, oh * ow)

    w_flat = weight.data.reshape(f, c * kh * kw)
    out_data = np.einsum("fk,nkp->nfp", w_flat, cols).reshape(n, f, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    requires = any(t.requires_grad for t in parents)
    out = Tensor(out_data, requires_grad=requires, _parents=parents)

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(n, f, oh * ow)
        if weight.requires_grad:
            grad_w = np.einsum("nfp,nkp->fk", grad_flat, cols).reshape(weight.shape)
            _accumulate(weight, grad_w)
        if bias is not None and bias.requires_grad:
            _accumulate(bias, grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = np.einsum("fk,nfp->nkp", w_flat, grad_flat)
            grad_cols = grad_cols.reshape(n, c, kh, kw, oh, ow)
            grad_padded = np.zeros(
                (n, c, h + 2 * padding, w + 2 * padding), dtype=np.float64
            )
            for i in range(kh):
                for j in range(kw):
                    grad_padded[
                        :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
                    ] += grad_cols[:, :, i, j, :, :]
            if padding:
                grad_padded = grad_padded[
                    :, :, padding : padding + h, padding : padding + w
                ]
            _accumulate(x, grad_padded)

    out._backward = backward
    return out


def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling (stride = kernel) on ``(N, C, H, W)``."""
    if x.ndim != 4:
        raise NNError(f"max_pool2d expects 4-D input, got {x.shape}")
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise NNError(f"spatial dims {h}x{w} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    blocks = x.data.reshape(n, c, oh, kernel, ow, kernel)
    flat = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, oh, ow, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out = Tensor(out_data, requires_grad=x.requires_grad, _parents=(x,))

    def backward(grad: np.ndarray) -> None:
        grad_flat = np.zeros_like(flat)
        np.put_along_axis(grad_flat, arg[..., None], grad[..., None], axis=-1)
        grad_x = (
            grad_flat.reshape(n, c, oh, ow, kernel, kernel)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        _accumulate(x, grad_x)

    out._backward = backward
    return out
