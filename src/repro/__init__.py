"""repro — a full reproduction of CAMO (DAC 2024).

CAMO: Correlation-Aware Mask Optimization with Modulated Reinforcement
Learning.  This package bundles the paper's contribution (the CAMO agent in
:mod:`repro.core`) together with every substrate it depends on: rectilinear
geometry and edge-based mask editing, a Hopkins/SOCS lithography simulator,
EPE / PV-band metrology, squish-pattern feature encoding, a numpy autograd
neural-network framework, policy-gradient RL, baseline OPC engines, and the
via / metal benchmark suites with the experiment harness that regenerates
every table and figure of the paper.

The public entry point is the :mod:`repro.service` front door — typed
``OptRequest`` / ``OptResult`` records, an engine registry, and a
``MaskOptService`` whose verification pass batches litho work across
clips and engines — also exposed on the command line as
``python -m repro`` (``optimize``, ``table``, ``bench-info``).

Quickstart::

    from repro import quick_opc
    result = quick_opc()            # optimize a tiny via clip with CAMO
    print(result.summary())

or, equivalently, from a shell::

    python -m repro optimize --suite tiny
"""

from repro.version import __version__

__all__ = ["__version__", "quick_opc"]


def quick_opc():
    """Run CAMO end-to-end on a tiny generated via clip (lazy import)."""
    from repro.eval.quick import quick_opc as _quick_opc

    return _quick_opc()
